"""The CSD inference engine — the paper's primary contribution.

:class:`CSDInferenceEngine` assembles the three kernels on an FPGA device
model, performs the host-program initialisation (weight ingest, optional
fixed-point quantisation, DDR placement), and executes real LSTM forward
passes while accounting simulated hardware time.

The engine is *functional*: ``infer_sequence`` computes the actual
classification the FPGA would produce (bit-faithful to the configured
arithmetic), alongside an :class:`~repro.core.timing.InferenceTiming`
report.  In fixed-point mode the numerics go through the scale-10^6
integer pipeline of :mod:`repro.fixedpoint`, so quantisation effects on
detection accuracy are measurable, not assumed.

``infer_batch`` runs the same forward pass vectorised across the batch
dimension and is bit-exact with the sequential path at every optimisation
level.  Batching accelerates the *host simulation* only: the reported
:class:`~repro.core.timing.InferenceTiming` stays the per-sequence
simulated hardware time, because the modeled FPGA processes sequences
item by item regardless of how the simulation is scheduled.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

import numpy as np

from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.kernels.backends import (
    FALLBACK_OVERFLOW_GUARD,
    FusedOverflow,
    resolve_backend,
)
from repro.core.kernels.gates import GatesKernel
from repro.core.kernels.hidden_state import HiddenStateKernel
from repro.core.kernels.preprocess import PreprocessKernel
from repro.core.timing import InferenceTiming, build_inference_timing
from repro.core.weights import HostWeights, QuantizedHostWeights
from repro.hw.fpga import FpgaDevice, ResourceRequest
from repro.hw.smartssd import SmartSSD


@dataclasses.dataclass(frozen=True)
class InferenceResult:
    """Outcome of one sequence inference."""

    probability: float
    timing: InferenceTiming

    @property
    def is_ransomware(self) -> bool:
        """Convenience threshold at 0.5 (the detector may re-threshold)."""
        return self.probability >= 0.5


@dataclasses.dataclass(frozen=True)
class BatchInferenceResult:
    """Outcome of one batched inference call.

    ``timing`` is the **per-sequence** simulated hardware time: the modeled
    FPGA runs sequences item by item, so each sequence in the batch costs
    the same simulated latency it would cost alone.  Batching speeds up the
    *host simulation* (one NumPy pass instead of N Python loops), which is
    a throughput claim about this reproduction, not about the hardware.
    """

    probabilities: np.ndarray
    timing: InferenceTiming

    @property
    def batch_size(self) -> int:
        return int(self.probabilities.shape[0])

    def results(self) -> Iterator[InferenceResult]:
        """Lazily yield per-sequence :class:`InferenceResult` views.

        A generator, not a list: a million-sequence batch should not
        materialise a million result objects just to stream over them.
        Use ``list(batch.results())`` to materialise, or
        :meth:`result_at` for random access.
        """
        for probability in self.probabilities:
            yield InferenceResult(
                probability=float(probability), timing=self.timing
            )

    def result_at(self, index: int) -> InferenceResult:
        """Random-access view of one sequence's result."""
        return InferenceResult(
            probability=float(self.probabilities[index]), timing=self.timing
        )


class CSDInferenceEngine:
    """LSTM inference offloaded entirely to a (simulated) CSD FPGA.

    Build with :meth:`from_model` (directly from a trained classifier) or
    :meth:`from_weight_file` (the paper's text-file deployment path).

    Parameters
    ----------
    config:
        Engine configuration; see :class:`~repro.core.config.EngineConfig`.
    weights:
        Host-layout weights, or ``None`` for a timing-only engine.
    """

    def __init__(
        self,
        config: EngineConfig,
        weights: HostWeights | None,
        telemetry=None,
    ):
        self.config = config
        self.device = FpgaDevice(
            part=config.fpga_part,
            kernel_clock_hz=config.kernel_clock_hz,
            ddr_banks_used=config.ddr_banks,
        )
        self.preprocess = PreprocessKernel(config)
        self.gates = GatesKernel(config)
        self.hidden_state = HiddenStateKernel(config)
        self._place_kernels()

        self.weights: HostWeights | None = None
        self.quantized: QuantizedHostWeights | None = None
        self.storage: SmartSSD | None = None
        self.sequences_processed = 0
        self._pool = None  # cached WorkerPool (see worker_pool)
        self._step_backend = None  # cached kernel backend (see step_backend)
        self.telemetry = None
        if telemetry is not None:
            self.attach_telemetry(telemetry)
        if weights is not None:
            self.load_weights(weights)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_model(
        cls,
        model,
        config: EngineConfig | None = None,
        sequence_length: int | None = None,
    ) -> "CSDInferenceEngine":
        """Build from a trained :class:`~repro.nn.model.SequenceClassifier`.

        ``sequence_length`` sets the pre-established item count (100 in
        the paper) when no explicit config is given.
        """
        weights = HostWeights.from_model(model)
        config = cls._config_for_weights(weights, config, sequence_length)
        return cls(config, weights)

    @classmethod
    def from_weight_file(
        cls,
        source,
        config: EngineConfig | None = None,
        sequence_length: int | None = None,
    ) -> "CSDInferenceEngine":
        """Build from the text weight file the host program ingests."""
        weights = HostWeights.from_file(source)
        config = cls._config_for_weights(weights, config, sequence_length)
        return cls(config, weights)

    @classmethod
    def build_unloaded(cls, config: EngineConfig) -> "CSDInferenceEngine":
        """Build a timing-only engine (no weights, no inference)."""
        return cls(config, weights=None)

    @staticmethod
    def _config_for_weights(
        weights: HostWeights,
        config: EngineConfig | None,
        sequence_length: int | None = None,
    ) -> EngineConfig:
        inferred = weights.dimensions
        if sequence_length is not None:
            if config is not None:
                raise ValueError("pass sequence_length or config, not both")
            inferred = dataclasses.replace(inferred, sequence_length=sequence_length)
        if config is None:
            return EngineConfig(dimensions=inferred)
        have = config.dimensions
        if (have.vocab_size, have.embedding_dim, have.hidden_size) != (
            inferred.vocab_size,
            inferred.embedding_dim,
            inferred.hidden_size,
        ):
            raise ValueError(
                f"config dimensions {have} do not match the weights "
                f"({inferred.vocab_size}, {inferred.embedding_dim}, "
                f"{inferred.hidden_size})"
            )
        return config

    # ------------------------------------------------------------------
    # Host-program initialisation
    # ------------------------------------------------------------------

    def _kernel_resources(self) -> dict:
        """Per-kernel resource estimates, scaled by model dimensions."""
        dims = self.config.dimensions
        fan_in = dims.gate_input_size
        fixed = self.config.optimization.uses_fixed_point
        if fixed:
            # Spatially-unrolled DSP mat-vec: one DSP cascade per MAC.
            gates_dsp = dims.hidden_size * fan_in
            gates_lut = 30_000
        else:
            gates_dsp = 16
            gates_lut = 15_000
        return {
            "preprocess": ResourceRequest(luts=5_000, flip_flops=8_000, dsp_slices=0, bram_blocks=4),
            "gates_cu": ResourceRequest(
                luts=gates_lut, flip_flops=2 * gates_lut, dsp_slices=gates_dsp, bram_blocks=2
            ),
            "hidden_state": ResourceRequest(
                luts=20_000,
                flip_flops=30_000,
                dsp_slices=96 if fixed else 40,
                bram_blocks=2,
            ),
        }

    def _place_kernels(self) -> None:
        """Link the design: place CUs and assign them to DDR banks."""
        resources = self._kernel_resources()
        self.device.place_kernel("kernel_preprocess", resources["preprocess"])
        cu_names = [f"kernel_gates_{i}" for i in range(self.config.num_gate_cus)]
        for cu_name in cu_names:
            self.device.place_kernel(cu_name, resources["gates_cu"])
        self.device.place_kernel("kernel_hidden_state", resources["hidden_state"])
        self.device.ddr.assign_readers(["kernel_preprocess"] + cu_names)

    def load_weights(self, weights: HostWeights) -> None:
        """Host step: ingest parameters, quantise if needed, init kernels."""
        self.weights = weights
        self._step_backend = None  # weights changed: backend math is stale
        if self.config.optimization.uses_fixed_point:
            self.quantized = weights.quantized(self.config.qformat)
        bank = self.device.ddr.banks[0]
        bank.allocate(weights.total_bytes(), label="model parameters")
        self.preprocess.load_embeddings(weights, self.quantized)
        self.gates.load_weights(weights, self.quantized)
        self.hidden_state.load_weights(weights, self.quantized)

    def attach_storage(self, smartssd: SmartSSD) -> None:
        """Pair the engine with a SmartSSD for P2P input fetches."""
        self.storage = smartssd
        if self.telemetry is not None:
            smartssd.telemetry = self.telemetry

    def attach_telemetry(self, telemetry) -> None:
        """Enable observation: route metrics/spans to ``telemetry``.

        Propagates to the preprocess kernel's AXI port and any attached
        SmartSSD.  The contract (metric names, labels, units, the
        ``infer_batch`` span tree) is documented in
        ``docs/observability.md``; telemetry never alters numerics —
        batch results stay bit-exact with telemetry on or off.
        """
        self.telemetry = telemetry
        self.preprocess.axi.telemetry = telemetry
        if self.storage is not None:
            self.storage.telemetry = telemetry

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def _require_loaded(self) -> None:
        if self.weights is None:
            raise RuntimeError(
                "engine has no weights loaded; build with from_model/"
                "from_weight_file or call load_weights"
            )

    @property
    def step_backend(self):
        """The engine's kernel backend, resolved lazily and cached.

        Selected by ``config.backend`` from the registry in
        :mod:`repro.core.kernels.backends`.  Resolution may itself
        degrade (missing numba, unsafe bounds); the returned backend's
        ``fallback_reasons`` records why.  Rebuilt after
        :meth:`load_weights` since the fused math bakes the weights in.
        """
        if self._step_backend is None:
            self._require_loaded()
            self._step_backend = resolve_backend(self.config.backend, self)
        return self._step_backend

    def _initial_hidden(self, batch_size: int | None = None) -> np.ndarray:
        hidden = self.config.dimensions.hidden_size
        dtype = np.int64 if self.config.optimization.uses_fixed_point else np.float64
        shape = hidden if batch_size is None else (batch_size, hidden)
        return np.zeros(shape, dtype=dtype)

    def infer_sequence(self, token_ids) -> InferenceResult:
        """Classify one sequence, returning probability and timing.

        Delegates to :meth:`infer_batch` with a batch of one; the batched
        kernels are bit-exact with the historical per-token loop at every
        optimisation level (see ``tests/core/test_batch_parity.py``).

        Parameters
        ----------
        token_ids:
            Iterable of ``sequence_length`` integer token ids.
        """
        self._require_loaded()
        tokens = np.asarray(list(token_ids), dtype=np.int64)
        expected = self.config.dimensions.sequence_length
        if tokens.shape != (expected,):
            raise ValueError(
                f"expected a fully-formed sequence of {expected} items, got "
                f"shape {tokens.shape}"
            )
        batch = self.infer_batch(tokens[np.newaxis, :])
        return InferenceResult(
            probability=float(batch.probabilities[0]), timing=batch.timing
        )

    def infer_batch(self, sequences) -> BatchInferenceResult:
        """Classify a batch of sequences in one vectorised forward pass.

        The LSTM runs once across the whole batch — a single embedding
        gather, one stacked ``(4H, H+E)`` gate matmul per timestep, and an
        element-wise cell/hidden update over ``(N, H)`` arrays — in float
        or scale-10^6 fixed-point arithmetic.  Probabilities are bit-exact
        with running :meth:`infer_sequence` on each row.

        The returned ``timing`` is the per-sequence simulated hardware
        time (identical for every sequence of the batch): batching is a
        host-simulation speedup, not a hardware claim.  AXI and
        sequence counters advance exactly as N sequential calls would.

        Parameters
        ----------
        sequences:
            Integer array of shape ``(N, sequence_length)`` with ``N >= 1``.
        """
        self._require_loaded()
        batch = np.asarray(sequences, dtype=np.int64)
        expected = self.config.dimensions.sequence_length
        if batch.ndim != 2 or batch.shape[1] != expected:
            raise ValueError(
                f"expected a (N, {expected}) batch of fully-formed sequences, "
                f"got shape {batch.shape}"
            )
        if batch.shape[0] == 0:
            raise ValueError("batch must contain at least one sequence")

        embedded = self.preprocess.run_batch(batch)  # (N, T, E)
        predictions = None
        backend = self.step_backend
        if backend.accelerates_inference():
            try:
                predictions = backend.infer_probabilities(embedded)
            except FusedOverflow:
                backend.record_fallback(FALLBACK_OVERFLOW_GUARD)
                predictions = None
        if predictions is None:
            self.hidden_state.reset(batch_size=batch.shape[0])
            hidden_prev = self._initial_hidden(batch_size=batch.shape[0])
            for step in range(expected):
                gate_outputs = self.gates.run_batch(hidden_prev, embedded[:, step, :])
                hidden_prev, predictions = self.hidden_state.run_batch(gate_outputs)
            if predictions is None:
                raise AssertionError("batch completed without classifications")

        timing = build_inference_timing(
            self.config,
            self.preprocess.timing(),  # charges one sequence's AXI fetch
            self.gates.timing(),
            self.hidden_state.timing(),
            self.hidden_state.classification_cycles(),
            self.device.clock,
        )
        self.preprocess.account_batch_fetches(batch.shape[0] - 1)
        self.sequences_processed += batch.shape[0]
        if self.telemetry is not None:
            self._emit_batch_telemetry(batch.shape[0], timing)
        return BatchInferenceResult(
            probabilities=np.asarray(predictions, dtype=np.float64), timing=timing
        )

    def _emit_batch_telemetry(self, batch_size: int, timing: InferenceTiming) -> None:
        """Record the documented metrics + span tree for one batch call.

        One histogram observation per *sequence* (``count=batch_size``
        folds them — every sequence of a batch shares the same simulated
        latency), and one span tree per call laying out the per-item
        kernel schedule plus the one-time FC epilogue.  See
        ``docs/observability.md`` for the exact contract; the tree shape
        below is pinned by the docs-as-contract test.
        """
        telemetry = self.telemetry
        optimization = self.config.optimization.name
        telemetry.counter("repro_batches_total").inc()
        telemetry.counter(
            "repro_sequences_processed_total", optimization=optimization
        ).inc(batch_size)
        telemetry.counter("repro_items_processed_total", optimization=optimization).inc(
            batch_size * self.config.dimensions.sequence_length
        )
        telemetry.histogram("repro_batch_size").observe(batch_size)
        for report in timing.per_item_reports:
            telemetry.histogram(
                "repro_kernel_latency_cycles", kernel=report.kernel
            ).observe(report.cycles, count=batch_size)
        total_cycles = timing.sequence_cycles + timing.classification_cycles
        telemetry.histogram("repro_sequence_latency_cycles").observe(
            total_cycles, count=batch_size
        )

        preprocess_cycles, gates_cycles, hidden_cycles = (
            report.cycles for report in timing.per_item_reports
        )
        tracer = telemetry.tracer
        root = tracer.record(
            "csd.infer_batch",
            0,
            total_cycles,
            attributes={"batch_size": batch_size, "optimization": optimization},
        )
        tracer.record("csd.preprocess", 0, preprocess_cycles, parent=root)
        gates_end = preprocess_cycles + gates_cycles
        gates_span = tracer.record(
            "csd.gates", preprocess_cycles, gates_end, parent=root
        )
        for cu_index in range(self.config.num_gate_cus):
            tracer.record(
                f"csd.gates.cu{cu_index}", preprocess_cycles, gates_end,
                parent=gates_span,
            )
        tracer.record(
            "csd.hidden_state", gates_end, gates_end + hidden_cycles, parent=root
        )
        tracer.record(
            "csd.fc_head", timing.sequence_cycles, total_cycles, parent=root
        )

    def infer_from_storage(self, key: str, token_ids) -> tuple:
        """Fetch a sequence from the attached SmartSSD via P2P, then infer.

        Returns ``(InferenceResult, transfer_seconds)``.  The sequence must
        previously have been written to the SSD under ``key``.  The FPGA
        DRAM reserved for the fetched input is released once inference
        completes, so long-running engines can fetch indefinitely.
        """
        if self.storage is None:
            raise RuntimeError("no SmartSSD attached; call attach_storage first")
        transfer_seconds = self.storage.p2p_fetch(key)
        fetched_bytes = self.storage.transfers[-1].num_bytes
        if self.telemetry is not None:
            self.telemetry.tracer.record(
                "csd.p2p_dma",
                0,
                self.device.clock.seconds_to_cycles(transfer_seconds),
                attributes={
                    "key": key, "bytes": fetched_bytes, "route": "p2p",
                    "seconds": transfer_seconds,
                },
            )
        try:
            result = self.infer_sequence(token_ids)
        finally:
            self.storage.release_fpga_dram(fetched_bytes)
        return result, transfer_seconds

    def worker_pool(self, workers: int):
        """The engine's persistent data-parallel backend (built on demand).

        The pool is cached: asking for the same worker count returns the
        live pool (forking and re-broadcasting weights per call would
        defeat the point); a different count rebuilds it.  The pool
        tracks this engine's current telemetry.  See
        :class:`repro.core.parallel.WorkerPool`.
        """
        from repro.core.parallel import WorkerPool

        self._require_loaded()
        pool = self._pool
        if pool is None or pool.workers != workers:
            if pool is not None:
                pool.close()
            pool = WorkerPool(
                self.config, self.weights, workers,
                telemetry=self.telemetry, local_engine=self,
            )
            self._pool = pool
        else:
            pool.telemetry = self.telemetry
        return pool

    def shutdown_pool(self) -> None:
        """Release the cached worker pool (processes + shared memory)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def predict_proba(
        self, sequences, chunk_size: int = 1024, workers: int = 1
    ) -> np.ndarray:
        """Probabilities for a batch of sequences, shape ``(N,)``.

        Runs :meth:`infer_batch` over ``chunk_size``-sequence slices to
        bound the float path's ``(chunk, 4H, H+E)`` broadcast temporary;
        chunking cannot change any value (rows are independent).

        With ``workers > 1`` the chunks shard across a persistent
        :class:`~repro.core.parallel.WorkerPool` of forked processes and
        merge in shard order — bit-exact with ``workers=1`` at every
        optimisation level (falls back in-process where fork or shared
        memory is unavailable).
        """
        if workers > 1:
            return self.worker_pool(workers).predict_proba(
                sequences, chunk_size=chunk_size
            )
        sequences = np.asarray(sequences)
        if sequences.ndim != 2:
            raise ValueError(f"expected (N, T) batch, got shape {sequences.shape}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if sequences.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        return np.concatenate(
            [
                self.infer_batch(sequences[start:start + chunk_size]).probabilities
                for start in range(0, sequences.shape[0], chunk_size)
            ]
        )

    def predict(
        self, sequences, threshold: float = 0.5, workers: int = 1
    ) -> np.ndarray:
        """Hard 0/1 predictions for a batch of sequences."""
        return (
            self.predict_proba(sequences, workers=workers) >= threshold
        ).astype(int)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def statistics(self) -> dict:
        """Operational counters for monitoring dashboards.

        Covers what an operator would chart: work done, data moved
        through the preprocess AXI master, memory and fabric occupancy.
        """
        items = self.sequences_processed * self.config.dimensions.sequence_length
        utilization = self.device.utilization()
        return {
            "sequences_processed": self.sequences_processed,
            "items_processed": items,
            "axi_bytes_read": self.preprocess.axi.bytes_transferred,
            "axi_transfers": self.preprocess.axi.transfer_count,
            "ddr_bytes_allocated": self.device.ddr.total_allocated(),
            "dsp_utilization": utilization["dsp_slices"],
            "lut_utilization": utilization["luts"],
            "optimization": self.config.optimization.name,
        }

    def per_item_microseconds(self) -> float:
        """The paper's per-forward-pass figure for this configuration."""
        return self.analytic_timing().per_item_microseconds

    def sequence_microseconds(self) -> float:
        """Whole-sequence simulated latency (pipeline overlap + FC epilogue).

        This is the per-request service time the fleet serving simulator
        charges: the modeled FPGA runs sequences item by item, so a batch
        of N occupies the device for N of these.
        """
        return self.analytic_timing().sequence_microseconds

    def analytic_timing(self) -> InferenceTiming:
        """The closed-form :class:`InferenceTiming` for this configuration."""
        return build_inference_timing(
            self.config,
            self.preprocess.timing(),
            self.gates.timing(),
            self.hidden_state.timing(),
            self.hidden_state.classification_cycles(),
            self.device.clock,
        )


def engine_at_level(
    model,
    level: OptimizationLevel,
    sequence_length: int | None = None,
    **config_overrides,
) -> CSDInferenceEngine:
    """Convenience: build an engine for ``model`` at one Fig. 3 rung."""
    weights = HostWeights.from_model(model)
    dims = weights.dimensions
    if sequence_length is not None:
        dims = dataclasses.replace(dims, sequence_length=sequence_length)
    config = EngineConfig(dimensions=dims, optimization=level, **config_overrides)
    return CSDInferenceEngine(config, weights)
