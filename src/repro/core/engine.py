"""The CSD inference engine — the paper's primary contribution.

:class:`CSDInferenceEngine` assembles the three kernels on an FPGA device
model, performs the host-program initialisation (weight ingest, optional
fixed-point quantisation, DDR placement), and executes real LSTM forward
passes while accounting simulated hardware time.

The engine is *functional*: ``infer_sequence`` computes the actual
classification the FPGA would produce (bit-faithful to the configured
arithmetic), alongside an :class:`~repro.core.timing.InferenceTiming`
report.  In fixed-point mode the numerics go through the scale-10^6
integer pipeline of :mod:`repro.fixedpoint`, so quantisation effects on
detection accuracy are measurable, not assumed.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.kernels.gates import GatesKernel
from repro.core.kernels.hidden_state import HiddenStateKernel
from repro.core.kernels.preprocess import PreprocessKernel
from repro.core.timing import InferenceTiming, build_inference_timing
from repro.core.weights import HostWeights, QuantizedHostWeights
from repro.hw.fpga import FpgaDevice, ResourceRequest
from repro.hw.smartssd import SmartSSD


@dataclasses.dataclass(frozen=True)
class InferenceResult:
    """Outcome of one sequence inference."""

    probability: float
    timing: InferenceTiming

    @property
    def is_ransomware(self) -> bool:
        """Convenience threshold at 0.5 (the detector may re-threshold)."""
        return self.probability >= 0.5


class CSDInferenceEngine:
    """LSTM inference offloaded entirely to a (simulated) CSD FPGA.

    Build with :meth:`from_model` (directly from a trained classifier) or
    :meth:`from_weight_file` (the paper's text-file deployment path).

    Parameters
    ----------
    config:
        Engine configuration; see :class:`~repro.core.config.EngineConfig`.
    weights:
        Host-layout weights, or ``None`` for a timing-only engine.
    """

    def __init__(self, config: EngineConfig, weights: HostWeights | None):
        self.config = config
        self.device = FpgaDevice(
            part=config.fpga_part,
            kernel_clock_hz=config.kernel_clock_hz,
            ddr_banks_used=config.ddr_banks,
        )
        self.preprocess = PreprocessKernel(config)
        self.gates = GatesKernel(config)
        self.hidden_state = HiddenStateKernel(config)
        self._place_kernels()

        self.weights: HostWeights | None = None
        self.quantized: QuantizedHostWeights | None = None
        self.storage: SmartSSD | None = None
        self.sequences_processed = 0
        if weights is not None:
            self.load_weights(weights)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_model(
        cls,
        model,
        config: EngineConfig | None = None,
        sequence_length: int | None = None,
    ) -> "CSDInferenceEngine":
        """Build from a trained :class:`~repro.nn.model.SequenceClassifier`.

        ``sequence_length`` sets the pre-established item count (100 in
        the paper) when no explicit config is given.
        """
        weights = HostWeights.from_model(model)
        config = cls._config_for_weights(weights, config, sequence_length)
        return cls(config, weights)

    @classmethod
    def from_weight_file(
        cls,
        source,
        config: EngineConfig | None = None,
        sequence_length: int | None = None,
    ) -> "CSDInferenceEngine":
        """Build from the text weight file the host program ingests."""
        weights = HostWeights.from_file(source)
        config = cls._config_for_weights(weights, config, sequence_length)
        return cls(config, weights)

    @classmethod
    def build_unloaded(cls, config: EngineConfig) -> "CSDInferenceEngine":
        """Build a timing-only engine (no weights, no inference)."""
        return cls(config, weights=None)

    @staticmethod
    def _config_for_weights(
        weights: HostWeights,
        config: EngineConfig | None,
        sequence_length: int | None = None,
    ) -> EngineConfig:
        inferred = weights.dimensions
        if sequence_length is not None:
            if config is not None:
                raise ValueError("pass sequence_length or config, not both")
            inferred = dataclasses.replace(inferred, sequence_length=sequence_length)
        if config is None:
            return EngineConfig(dimensions=inferred)
        have = config.dimensions
        if (have.vocab_size, have.embedding_dim, have.hidden_size) != (
            inferred.vocab_size,
            inferred.embedding_dim,
            inferred.hidden_size,
        ):
            raise ValueError(
                f"config dimensions {have} do not match the weights "
                f"({inferred.vocab_size}, {inferred.embedding_dim}, "
                f"{inferred.hidden_size})"
            )
        return config

    # ------------------------------------------------------------------
    # Host-program initialisation
    # ------------------------------------------------------------------

    def _kernel_resources(self) -> dict:
        """Per-kernel resource estimates, scaled by model dimensions."""
        dims = self.config.dimensions
        fan_in = dims.gate_input_size
        fixed = self.config.optimization.uses_fixed_point
        if fixed:
            # Spatially-unrolled DSP mat-vec: one DSP cascade per MAC.
            gates_dsp = dims.hidden_size * fan_in
            gates_lut = 30_000
        else:
            gates_dsp = 16
            gates_lut = 15_000
        return {
            "preprocess": ResourceRequest(luts=5_000, flip_flops=8_000, dsp_slices=0, bram_blocks=4),
            "gates_cu": ResourceRequest(
                luts=gates_lut, flip_flops=2 * gates_lut, dsp_slices=gates_dsp, bram_blocks=2
            ),
            "hidden_state": ResourceRequest(
                luts=20_000,
                flip_flops=30_000,
                dsp_slices=96 if fixed else 40,
                bram_blocks=2,
            ),
        }

    def _place_kernels(self) -> None:
        """Link the design: place CUs and assign them to DDR banks."""
        resources = self._kernel_resources()
        self.device.place_kernel("kernel_preprocess", resources["preprocess"])
        cu_names = [f"kernel_gates_{i}" for i in range(self.config.num_gate_cus)]
        for cu_name in cu_names:
            self.device.place_kernel(cu_name, resources["gates_cu"])
        self.device.place_kernel("kernel_hidden_state", resources["hidden_state"])
        self.device.ddr.assign_readers(["kernel_preprocess"] + cu_names)

    def load_weights(self, weights: HostWeights) -> None:
        """Host step: ingest parameters, quantise if needed, init kernels."""
        self.weights = weights
        if self.config.optimization.uses_fixed_point:
            self.quantized = weights.quantized(self.config.qformat)
        bank = self.device.ddr.banks[0]
        bank.allocate(weights.total_bytes(), label="model parameters")
        self.preprocess.load_embeddings(weights, self.quantized)
        self.gates.load_weights(weights, self.quantized)
        self.hidden_state.load_weights(weights, self.quantized)

    def attach_storage(self, smartssd: SmartSSD) -> None:
        """Pair the engine with a SmartSSD for P2P input fetches."""
        self.storage = smartssd

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def _require_loaded(self) -> None:
        if self.weights is None:
            raise RuntimeError(
                "engine has no weights loaded; build with from_model/"
                "from_weight_file or call load_weights"
            )

    def _initial_hidden(self) -> np.ndarray:
        hidden = self.config.dimensions.hidden_size
        dtype = np.int64 if self.config.optimization.uses_fixed_point else np.float64
        return np.zeros(hidden, dtype=dtype)

    def infer_sequence(self, token_ids) -> InferenceResult:
        """Classify one sequence, returning probability and timing.

        Parameters
        ----------
        token_ids:
            Iterable of ``sequence_length`` integer token ids.
        """
        self._require_loaded()
        tokens = np.asarray(list(token_ids), dtype=np.int64)
        expected = self.config.dimensions.sequence_length
        if tokens.shape != (expected,):
            raise ValueError(
                f"expected a fully-formed sequence of {expected} items, got "
                f"shape {tokens.shape}"
            )

        self.hidden_state.reset()
        hidden_prev = self._initial_hidden()
        prediction = None
        for token in tokens:
            embedding_copies = self.preprocess.run(int(token))
            gate_outputs = self.gates.run(hidden_prev, embedding_copies)
            hidden_copies, prediction = self.hidden_state.run(gate_outputs)
            hidden_prev = hidden_copies[0]
        if prediction is None:
            raise AssertionError("sequence completed without a classification")

        timing = build_inference_timing(
            self.config,
            self.preprocess.timing(),
            self.gates.timing(),
            self.hidden_state.timing(),
            self.hidden_state.classification_cycles(),
            self.device.clock,
        )
        self.sequences_processed += 1
        return InferenceResult(probability=float(prediction), timing=timing)

    def infer_from_storage(self, key: str, token_ids) -> tuple:
        """Fetch a sequence from the attached SmartSSD via P2P, then infer.

        Returns ``(InferenceResult, transfer_seconds)``.  The sequence must
        previously have been written to the SSD under ``key``.
        """
        if self.storage is None:
            raise RuntimeError("no SmartSSD attached; call attach_storage first")
        transfer_seconds = self.storage.p2p_fetch(key)
        result = self.infer_sequence(token_ids)
        return result, transfer_seconds

    def predict_proba(self, sequences) -> np.ndarray:
        """Probabilities for a batch of sequences, shape ``(N,)``."""
        sequences = np.asarray(sequences)
        if sequences.ndim != 2:
            raise ValueError(f"expected (N, T) batch, got shape {sequences.shape}")
        return np.array([self.infer_sequence(row).probability for row in sequences])

    def predict(self, sequences, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions for a batch of sequences."""
        return (self.predict_proba(sequences) >= threshold).astype(int)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def statistics(self) -> dict:
        """Operational counters for monitoring dashboards.

        Covers what an operator would chart: work done, data moved
        through the preprocess AXI master, memory and fabric occupancy.
        """
        items = self.sequences_processed * self.config.dimensions.sequence_length
        return {
            "sequences_processed": self.sequences_processed,
            "items_processed": items,
            "axi_bytes_read": self.preprocess.axi.bytes_transferred,
            "axi_transfers": self.preprocess.axi.transfer_count,
            "ddr_bytes_allocated": self.device.ddr.total_allocated(),
            "dsp_utilization": self.device.utilization()["dsp_slices"],
            "lut_utilization": self.device.utilization()["luts"],
            "optimization": self.config.optimization.name,
        }

    def per_item_microseconds(self) -> float:
        """The paper's per-forward-pass figure for this configuration."""
        timing = build_inference_timing(
            self.config,
            self.preprocess.timing(),
            self.gates.timing(),
            self.hidden_state.timing(),
            self.hidden_state.classification_cycles(),
            self.device.clock,
        )
        return timing.per_item_microseconds


def engine_at_level(
    model,
    level: OptimizationLevel,
    sequence_length: int | None = None,
    **config_overrides,
) -> CSDInferenceEngine:
    """Convenience: build an engine for ``model`` at one Fig. 3 rung."""
    weights = HostWeights.from_model(model)
    dims = weights.dimensions
    if sequence_length is not None:
        dims = dataclasses.replace(dims, sequence_length=sequence_length)
    config = EngineConfig(dimensions=dims, optimization=level, **config_overrides)
    return CSDInferenceEngine(config, weights)
