"""Mixed-precision exploration (paper Section VI, future work).

"Exploring mixed precision alternatives on CSDs would be a notable
endeavor": perform operations in lower precision where high precision is
not necessary and in higher precision where accuracy is required.

For the scale-factor arithmetic of this design, "precision" is the scale:
a smaller scale is a coarser (cheaper) format — narrower multipliers,
shallower rescale divides.  The natural mixed assignment for an LSTM is:

* **gates** (i/f/o/C' mat-vecs) — low precision.  Gate outputs pass
  through saturating activations, which wash out small input errors.
* **cell state / head** — high precision.  ``C_t`` integrates over all
  timesteps, so its quantisation error *accumulates*; the FC head decides
  the classification.

:class:`MixedPrecisionPolicy` assigns a :class:`~repro.fixedpoint.qformat.
QFormat` per stage; :func:`evaluate_policy` runs a functional forward
pass under the policy (rescaling at format boundaries, as DSP datapath
width converters would) and reports output divergence from the
full-precision engine plus a DSP cost estimate, so the benchmark can map
the accuracy/cost frontier.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.weights import HostWeights
from repro.fixedpoint.activations import qsigmoid, qsoftsign
from repro.fixedpoint.ops import qadd, qaffine, qdot, qmul
from repro.fixedpoint.qformat import QFormat


@dataclasses.dataclass(frozen=True)
class MixedPrecisionPolicy:
    """Per-stage number formats.

    The paper's deployed design is the uniform policy
    ``MixedPrecisionPolicy(QFormat(10**6), QFormat(10**6))``.
    """

    gate_format: QFormat
    state_format: QFormat

    def rescale(self, value, source: QFormat, target: QFormat):
        """Convert quantised values between formats (width converter)."""
        if source.scale == target.scale:
            return value
        scaled = np.asarray(value, dtype=np.int64) * target.scale
        result = np.rint(scaled / source.scale).astype(np.int64)
        if result.ndim == 0:
            return int(result)
        return result


def _dsp_cost_units(fmt: QFormat) -> int:
    """Relative DSP cost of a MAC at the given scale.

    A DSP48E2 multiplies 27x18 bits natively; wider products cascade
    additional slices.  Scale 10^6 values span ~2^21 for unit-range
    weights, so products need ~42 bits (2 slices); scale 10^3 fits a
    single slice.
    """
    import math

    bits = max(1, math.ceil(math.log2(fmt.scale))) + 4  # + headroom for values > 1
    product_bits = 2 * bits
    return max(1, math.ceil(product_bits / 44))


@dataclasses.dataclass(frozen=True)
class PolicyEvaluation:
    """Outcome of running a policy over a sequence batch."""

    policy: MixedPrecisionPolicy
    max_probability_error: float
    mean_probability_error: float
    decision_agreement: float
    relative_dsp_cost: float


class MixedPrecisionLstm:
    """Functional LSTM forward pass under a mixed-precision policy."""

    def __init__(self, weights: HostWeights, policy: MixedPrecisionPolicy):
        self.policy = policy
        self.weights = weights
        gate_fmt = policy.gate_format
        state_fmt = policy.state_format
        self._gate_params = {
            name: (gate_fmt.quantize(gate.matrix), gate_fmt.quantize(gate.bias))
            for name, gate in weights.gates.items()
        }
        self._embedding = gate_fmt.quantize(weights.embedding)
        self._fc_weights = state_fmt.quantize(weights.fc_weights)
        self._fc_bias = int(state_fmt.quantize(weights.fc_bias))
        self._hidden_size = weights.gates["i"].matrix.shape[0]

    def infer_sequence(self, token_ids) -> float:
        """Classify one sequence; returns the probability."""
        gate_fmt = self.policy.gate_format
        state_fmt = self.policy.state_format
        hidden_gate = np.zeros(self._hidden_size, dtype=np.int64)   # gate format
        cell = np.zeros(self._hidden_size, dtype=np.int64)          # state format

        for token in token_ids:
            x_t = self._embedding[int(token)]
            concatenated = np.concatenate([hidden_gate, x_t])
            gates = {}
            for name, (matrix, bias) in self._gate_params.items():
                pre = qaffine(matrix, concatenated, bias, gate_fmt)
                if name == "c":
                    gates[name] = qsoftsign(pre, gate_fmt)
                else:
                    gates[name] = qsigmoid(pre, gate_fmt)
            # Promote gate outputs to the state format for the cell update.
            i_t = self.policy.rescale(gates["i"], gate_fmt, state_fmt)
            f_t = self.policy.rescale(gates["f"], gate_fmt, state_fmt)
            o_t = self.policy.rescale(gates["o"], gate_fmt, state_fmt)
            c_bar = self.policy.rescale(gates["c"], gate_fmt, state_fmt)
            cell = qadd(qmul(f_t, cell, state_fmt), qmul(i_t, c_bar, state_fmt))
            hidden_state = qmul(o_t, qsoftsign(cell, state_fmt), state_fmt)
            # Demote h_t back to the gate format for the next item.
            hidden_gate = np.asarray(
                self.policy.rescale(hidden_state, state_fmt, gate_fmt), dtype=np.int64
            )

        logit = qadd(qdot(self._fc_weights, hidden_state, state_fmt), self._fc_bias)
        return float(state_fmt.dequantize(qsigmoid(logit, state_fmt)))


def evaluate_policy(
    weights: HostWeights,
    policy: MixedPrecisionPolicy,
    sequences: np.ndarray,
    reference_probabilities: np.ndarray,
) -> PolicyEvaluation:
    """Run ``sequences`` under ``policy`` and compare with a reference.

    ``reference_probabilities`` should come from the full-precision
    (float or uniform 10^6) engine over the same sequences.
    """
    sequences = np.asarray(sequences)
    reference = np.asarray(reference_probabilities, dtype=np.float64)
    if sequences.shape[0] != reference.shape[0]:
        raise ValueError("sequence/reference count mismatch")
    lstm = MixedPrecisionLstm(weights, policy)
    probabilities = np.array([lstm.infer_sequence(row) for row in sequences])
    errors = np.abs(probabilities - reference)
    agreement = float(np.mean((probabilities >= 0.5) == (reference >= 0.5)))

    uniform_high_cost = 2 * _dsp_cost_units(QFormat(10**6))
    policy_cost = _dsp_cost_units(policy.gate_format) + _dsp_cost_units(
        policy.state_format
    )
    return PolicyEvaluation(
        policy=policy,
        max_probability_error=float(errors.max()),
        mean_probability_error=float(errors.mean()),
        decision_agreement=agreement,
        relative_dsp_cost=policy_cost / uniform_high_cost,
    )
