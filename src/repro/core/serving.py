"""Fleet serving simulator: queueing, dynamic batching, failover.

The paper positions the SmartSSD as "a scalable solution ... allowing for
the installation of multiple devices within a single node"; the ROADMAP's
north star is serving heavy traffic across such a fleet.  This module is
the load-bearing subsystem for that claim: a deterministic discrete-event
simulator that drives N simulated CSD devices from per-stream request
queues, on the same simulated clock as everything else in the repo —
no wall clock anywhere, so two runs with one seed produce *identical*
event logs, metrics, and probabilities.

Mechanics
---------
* **Dynamic batching** — each device accumulates pending windows and
  executes them as one :meth:`~repro.core.engine.CSDInferenceEngine.infer_batch`
  call once ``max_batch`` requests are waiting or the oldest has waited
  ``max_wait_us``; the numeric results are bit-exact with calling
  ``infer_batch`` directly on the same windows (the batch path *is* the
  direct path).
* **Admission control** — per-device queues are bounded at
  ``queue_depth``; arrivals beyond the bound are shed explicitly and
  counted, never silently dropped.
* **Timeout + retry-with-failover** — a request whose attempt has waited
  past ``timeout_us`` is retried on the least-loaded healthy device; a
  :class:`~repro.hw.faults.FaultPlan` device failure kills a drive
  mid-run, aborts its in-flight batch, fails over its queue, and
  re-routes its streams using
  :meth:`~repro.core.fleet.FleetPlanner.rebalance_after_failure`.
* **Telemetry** — full instrumentation under the ``repro.telemetry/v1``
  contract (see ``docs/observability.md`` and ``docs/serving.md``):
  queue-depth gauges, batch-size and end-to-end latency histograms,
  shed/retry counters, and per-device ``serve.batch`` spans on the
  simulated microsecond timeline.

Time is integer simulated microseconds throughout, driven by the same
:class:`~repro.hw.sim.Simulator` event core the pipeline cross-validation
uses.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.core.fleet import FleetPlan, FleetPlanner, MonitoredStream
from repro.hw.faults import FaultPlan
from repro.hw.sim import Simulator

#: Shed reasons (the ``reason`` label of ``repro_serve_shed_total``).
SHED_QUEUE_FULL = "queue_full"
SHED_NO_DEVICE = "no_device"
SHED_RETRIES = "retries"

#: Retry reasons (the ``reason`` label of ``repro_serve_retries_total``).
RETRY_TIMEOUT = "timeout"
RETRY_FAILOVER = "failover"


@dataclasses.dataclass(frozen=True)
class ServingConfig:
    """Policy knobs of the fleet server.

    Parameters
    ----------
    max_batch:
        Largest dynamic batch a device executes in one ``infer_batch``.
    max_wait_us:
        Longest the oldest pending request may wait before a partial
        batch is flushed (0 = flush immediately, no batching delay).
    queue_depth:
        Bound on each device's pending queue; arrivals beyond it are
        shed with reason ``queue_full``.
    timeout_us:
        Per-attempt deadline: a request still queued this long after its
        (re-)enqueue is pulled from the batch and retried elsewhere.
        Should exceed ``max_wait_us`` or every request times out.
    max_retries:
        Additional attempts (timeout or failover) before a request is
        shed with reason ``retries``.
    """

    max_batch: int = 16
    max_wait_us: int = 2_000
    queue_depth: int = 64
    timeout_us: int = 50_000
    max_retries: int = 2

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {self.max_wait_us}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.timeout_us <= 0:
            raise ValueError(f"timeout_us must be positive, got {self.timeout_us}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")


@dataclasses.dataclass
class ServingRequest:
    """One window awaiting classification."""

    request_id: int
    stream: str
    sequence: np.ndarray
    arrival_us: int
    attempts: int = 0
    enqueued_us: int = 0


@dataclasses.dataclass(frozen=True)
class CompletedRequest:
    """A served request: where it ran, what it scored, when it finished."""

    request_id: int
    stream: str
    sequence: np.ndarray
    device: int
    probability: float
    arrival_us: int
    completion_us: int
    attempts: int

    @property
    def latency_us(self) -> int:
        return self.completion_us - self.arrival_us


@dataclasses.dataclass(frozen=True)
class ServingReport:
    """Outcome of one simulated serving run."""

    completed: tuple
    shed: dict
    retries: dict
    device_failures: int
    event_log: tuple
    duration_us: int
    device_busy_us: tuple
    offered: int

    @property
    def completed_count(self) -> int:
        return len(self.completed)

    @property
    def shed_count(self) -> int:
        return sum(self.shed.values())

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests that were not served."""
        if self.offered == 0:
            return 0.0
        return self.shed_count / self.offered

    def latencies_us(self) -> np.ndarray:
        """Sorted end-to-end latencies of completed requests."""
        return np.sort(
            np.array([c.latency_us for c in self.completed], dtype=np.int64)
        )

    def latency_percentile_us(self, percentile: float) -> float:
        """Nearest-rank percentile of completed end-to-end latency."""
        if not 0 < percentile <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        latencies = self.latencies_us()
        if latencies.size == 0:
            return float("nan")
        rank = max(1, math.ceil(percentile / 100.0 * latencies.size))
        return float(latencies[rank - 1])

    def device_utilization(self) -> tuple:
        """Per-device busy fraction over the whole run."""
        horizon = max(self.duration_us, 1)
        return tuple(busy / horizon for busy in self.device_busy_us)


def generate_workload(
    streams,
    duration_us: int,
    sequence_length: int,
    vocab_size: int = 278,
    seed: int = 0,
) -> list:
    """Seeded per-stream Poisson arrivals with random windows.

    Each :class:`~repro.core.fleet.MonitoredStream` produces windows at
    its ``windows_per_second`` rate with exponential inter-arrivals from
    an RNG derived from ``(seed, stream index)`` — fully reproducible,
    independent of stream order elsewhere.  Returns
    :class:`ServingRequest` objects sorted by ``(arrival_us, stream)``
    with dense request ids.
    """
    if duration_us <= 0:
        raise ValueError(f"duration_us must be positive, got {duration_us}")
    pending = []
    for index, stream in enumerate(streams):
        rng = np.random.default_rng([seed, index])
        mean_gap_us = 1e6 / stream.windows_per_second
        clock = 0.0
        while True:
            clock += rng.exponential(mean_gap_us)
            arrival = int(round(clock))
            if arrival >= duration_us:
                break
            sequence = rng.integers(0, vocab_size, size=sequence_length,
                                    dtype=np.int64)
            pending.append((arrival, stream.name, sequence))
    pending.sort(key=lambda item: (item[0], item[1]))
    return [
        ServingRequest(request_id=i, stream=name, sequence=seq, arrival_us=arrival)
        for i, (arrival, name, seq) in enumerate(pending)
    ]


class _Device:
    """One simulated drive: an engine, a bounded queue, a health flag."""

    __slots__ = (
        "index", "engine", "fault_plan", "service_us", "queue", "busy",
        "dead", "current_batch", "batch_start_us", "busy_us", "batches",
        "pending_task",
    )

    def __init__(self, index: int, engine, fault_plan: FaultPlan):
        self.index = index
        self.engine = engine
        self.fault_plan = fault_plan
        self.service_us = engine.sequence_microseconds()
        self.queue: list = []
        self.busy = False
        self.dead = False
        self.current_batch = None   # (batch_id, [ServingRequest, ...])
        self.batch_start_us = 0
        self.busy_us = 0
        self.batches = 0
        self.pending_task = None    # (batch_id, WorkerPool handle)


class FleetServer:
    """Deterministic discrete-event server for a node's CSD fleet.

    Parameters
    ----------
    engines:
        One loaded :class:`~repro.core.engine.CSDInferenceEngine` per
        simulated device; all must share the model dimensions.
    streams:
        The monitored streams (also the workload's rate model).
    config:
        Batching/queueing/retry policy.
    planner:
        Optional :class:`~repro.core.fleet.FleetPlanner`; when given,
        streams are routed by its first-fit plan and device failures
        re-route via ``rebalance_after_failure``.  When the plan (or a
        rebalance) calls for more devices than the fleet has, the
        overflow spills round-robin onto the healthy devices and
        admission control sheds what the node cannot absorb.  Without a
        planner, streams are routed round-robin and failover re-routes
        round-robin over the healthy survivors.
    fault_plans:
        Mapping of device index to :class:`~repro.hw.faults.FaultPlan`;
        ``device_fail`` / ``device_degrade`` faults drive the failover
        and degradation paths.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; observation-only,
        never alters scheduling or numerics.
    workers:
        With ``workers > 1`` the devices' numeric batch work (the real
        ``infer_batch`` forward passes) offloads to one shared
        :class:`~repro.core.parallel.WorkerPool`, overlapping host
        computation across devices between simulated events.  Scheduling
        stays on the simulated clock, so the event log, completions, and
        probabilities are identical to ``workers=1`` (scheduling never
        consults the probabilities).  Requires a homogeneous fleet: all
        engines sharing one config and one weights object (what
        :func:`build_fleet` builds).  Per-engine ``csd.*`` span trees
        and ``sequences_processed`` stay with the workers in this mode;
        metrics merge exactly (see ``docs/performance.md``).
    """

    def __init__(
        self,
        engines,
        streams,
        config: ServingConfig | None = None,
        planner: FleetPlanner | None = None,
        fault_plans: dict | None = None,
        telemetry=None,
        workers: int = 0,
    ):
        engines = list(engines)
        if not engines:
            raise ValueError("a fleet needs at least one device")
        dims = engines[0].config.dimensions
        for engine in engines[1:]:
            if engine.config.dimensions != dims:
                raise ValueError("all fleet engines must share model dimensions")
        self.workers = int(workers)
        if self.workers > 1:
            head = engines[0]
            for engine in engines[1:]:
                if engine.config != head.config or engine.weights is not head.weights:
                    raise ValueError(
                        "workers > 1 requires a homogeneous fleet: every "
                        "engine must share one config and one weights "
                        "object (use build_fleet)"
                    )
        self.config = config or ServingConfig()
        self.streams = list(streams)
        self.planner = planner
        self.telemetry = telemetry
        fault_plans = fault_plans or {}
        self.devices = [
            _Device(i, engine, fault_plans.get(i, FaultPlan()))
            for i, engine in enumerate(engines)
        ]
        if telemetry is not None:
            for engine in engines:
                engine.attach_telemetry(telemetry)

        self._plan: FleetPlan | None = None
        if planner is not None:
            self._plan = planner.plan(self.streams)
            self._stream_device = self._resolve_routes(self._plan)
        else:
            self._stream_device = {
                stream.name: i % len(self.devices)
                for i, stream in enumerate(self.streams)
            }

        self._sim = Simulator()
        self._events: list = []
        self._completed: list = []
        self._shed: dict = {}
        self._retries: dict = {}
        self._device_failures = 0
        self._offered = 0
        self._batch_counter = 0
        self._pool = None  # live only inside serve() when workers > 1

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _resolve_routes(self, plan: FleetPlan) -> dict:
        """Map streams to physical devices, spilling oversubscribed plans.

        The planner sizes an *ideal* fleet; this server has a fixed one.
        Planned device indices beyond the physical fleet (an
        oversubscribed plan or rebalance) spill round-robin onto the
        healthy devices — admission control then sheds what the fleet
        truly cannot absorb, which is the honest failure mode for an
        undersized node.  Streams are unroutable only when no healthy
        device exists at all.
        """
        healthy = [d.index for d in self.devices if not d.dead]
        routes: dict = {}
        for assignment in plan.assignments:
            target = assignment.device_index
            if target >= len(self.devices) or self.devices[target].dead:
                if not healthy:
                    continue
                target = healthy[assignment.device_index % len(healthy)]
            for stream in assignment.streams:
                routes[stream.name] = target
        return routes

    def _routable_device(self, index) -> "_Device | None":
        """The healthy physical device at ``index``, if any."""
        if index is None or not 0 <= index < len(self.devices):
            return None
        device = self.devices[index]
        return None if device.dead else device

    def _healthy_devices(self, exclude: int | None = None) -> list:
        devices = [d for d in self.devices if not d.dead and d.index != exclude]
        if not devices:  # fall back to the excluded device if it is all we have
            devices = [d for d in self.devices if not d.dead]
        return devices

    # ------------------------------------------------------------------
    # Telemetry + event-log helpers (observation only)
    # ------------------------------------------------------------------

    def _log(self, kind: str, **details) -> None:
        self._events.append(
            (self._sim.now, kind, tuple(sorted(details.items())))
        )

    def _set_queue_gauge(self, device: _Device) -> None:
        if self.telemetry is not None:
            self.telemetry.gauge(
                "repro_serve_queue_depth", device=device.index
            ).set(len(device.queue))

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------

    def _arrive(self, request: ServingRequest) -> None:
        self._offered += 1
        if self.telemetry is not None:
            self.telemetry.counter("repro_serve_requests_total").inc()
        self._log("arrival", request=request.request_id, stream=request.stream)
        device = self._routable_device(self._stream_device.get(request.stream))
        if device is None:
            self._shed_request(request, SHED_NO_DEVICE)
            return
        self._admit(device, request)

    def _admit(self, device: _Device, request: ServingRequest) -> None:
        if len(device.queue) >= self.config.queue_depth:
            self._shed_request(request, SHED_QUEUE_FULL)
            return
        request.enqueued_us = self._sim.now
        device.queue.append(request)
        self._set_queue_gauge(device)
        self._log("enqueue", request=request.request_id, device=device.index)
        self._maybe_flush(device)

    def _shed_request(self, request: ServingRequest, reason: str) -> None:
        self._shed[reason] = self._shed.get(reason, 0) + 1
        if self.telemetry is not None:
            self.telemetry.counter("repro_serve_shed_total", reason=reason).inc()
        self._log("shed", request=request.request_id, reason=reason)

    def _retry(self, request: ServingRequest, reason: str,
               exclude: int | None = None) -> None:
        request.attempts += 1
        if request.attempts > self.config.max_retries:
            self._shed_request(request, SHED_RETRIES)
            return
        self._retries[reason] = self._retries.get(reason, 0) + 1
        if self.telemetry is not None:
            self.telemetry.counter("repro_serve_retries_total", reason=reason).inc()
        self._log("retry", request=request.request_id, reason=reason)
        candidates = self._healthy_devices(exclude=exclude)
        if not candidates:
            self._shed_request(request, SHED_NO_DEVICE)
            return
        target = min(candidates, key=lambda d: (len(d.queue), d.index))
        self._admit(target, request)

    # ------------------------------------------------------------------
    # Dynamic batching
    # ------------------------------------------------------------------

    def _maybe_flush(self, device: _Device) -> None:
        """Flush if the batching policy says so, else arm a deadline wake."""
        if device.dead or device.busy or not device.queue:
            return
        now = self._sim.now
        oldest_wait = now - device.queue[0].enqueued_us
        if (len(device.queue) >= self.config.max_batch
                or oldest_wait >= self.config.max_wait_us):
            self._execute_batch(device)
            return
        wake_at = device.queue[0].enqueued_us + self.config.max_wait_us
        self._sim.schedule(wake_at - now, lambda: self._maybe_flush(device))

    def _execute_batch(self, device: _Device) -> None:
        now = self._sim.now
        batch: list = []
        timed_out: list = []
        while device.queue and len(batch) < self.config.max_batch:
            request = device.queue.pop(0)
            if now - request.enqueued_us >= self.config.timeout_us:
                timed_out.append(request)
            else:
                batch.append(request)
        self._set_queue_gauge(device)
        if batch:
            # Launch before processing retries: a retry may re-admit to
            # this device, and the busy flag keeps that from re-entering
            # the flush path mid-launch.
            self._batch_counter += 1
            batch_id = self._batch_counter
            device.busy = True
            device.current_batch = (batch_id, batch)
            device.batch_start_us = now
            if self._pool is not None:
                # Start the real forward pass now; it overlaps with other
                # devices' work until the simulated completion event
                # collects it in _complete_batch.
                device.pending_task = (
                    batch_id,
                    self._pool.submit_infer(
                        np.stack([request.sequence for request in batch])
                    ),
                )
            slowdown = device.fault_plan.service_slowdown(now)
            service_us = max(
                1, math.ceil(len(batch) * device.service_us * slowdown)
            )
            self._log(
                "batch_start", batch=batch_id, device=device.index,
                size=len(batch), requests=tuple(r.request_id for r in batch),
                service_us=service_us,
            )
            self._sim.schedule(
                service_us, lambda: self._complete_batch(device, batch_id)
            )
        for request in timed_out:
            self._retry(request, RETRY_TIMEOUT, exclude=device.index)
        if not batch:
            self._maybe_flush(device)  # everything timed out; look again

    def _complete_batch(self, device: _Device, batch_id: int) -> None:
        if device.dead or device.current_batch is None:
            return  # aborted by a device failure
        current_id, batch = device.current_batch
        if current_id != batch_id:
            return  # stale completion event
        now = self._sim.now
        if device.pending_task is not None and device.pending_task[0] == batch_id:
            probabilities = self._pool.result(device.pending_task[1])
            device.pending_task = None
        else:
            sequences = np.stack([request.sequence for request in batch])
            probabilities = device.engine.infer_batch(sequences).probabilities
        device.busy = False
        device.current_batch = None
        device.busy_us += now - device.batch_start_us
        device.batches += 1
        for request, probability in zip(batch, probabilities):
            record = CompletedRequest(
                request_id=request.request_id,
                stream=request.stream,
                sequence=request.sequence,
                device=device.index,
                probability=float(probability),
                arrival_us=request.arrival_us,
                completion_us=now,
                attempts=request.attempts,
            )
            self._completed.append(record)
        if self.telemetry is not None:
            telemetry = self.telemetry
            telemetry.counter("repro_serve_completed_total").inc(len(batch))
            telemetry.counter("repro_serve_batches_total").inc()
            telemetry.histogram("repro_serve_batch_size").observe(len(batch))
            for request in batch:
                telemetry.histogram("repro_serve_latency_seconds").observe(
                    (now - request.arrival_us) * 1e-6
                )
            telemetry.tracer.record(
                "serve.batch", device.batch_start_us, now,
                attributes={
                    "device": device.index, "batch_size": len(batch),
                    "unit": "us",
                },
            )
        self._log(
            "batch_complete", batch=batch_id, device=device.index,
            requests=tuple(r.request_id for r in batch),
            probabilities=tuple(float(p) for p in probabilities),
        )
        self._maybe_flush(device)

    # ------------------------------------------------------------------
    # Failure + failover
    # ------------------------------------------------------------------

    def _fail_device(self, device: _Device) -> None:
        if device.dead:
            return
        now = self._sim.now
        device.dead = True
        self._device_failures += 1
        if self.telemetry is not None:
            self.telemetry.counter("repro_serve_device_failures_total").inc()
        self._log("device_failed", device=device.index)
        self._reroute_after_failure(device.index)
        orphans: list = []
        if device.current_batch is not None:
            batch_id, batch = device.current_batch
            self._log(
                "batch_abort", batch=batch_id, device=device.index,
                requests=tuple(r.request_id for r in batch),
            )
            device.busy_us += now - device.batch_start_us
            device.busy = False
            device.current_batch = None
            if device.pending_task is not None:
                if self._pool is not None:
                    self._pool.discard(device.pending_task[1])
                device.pending_task = None
            orphans.extend(batch)
        orphans.extend(device.queue)
        device.queue = []
        self._set_queue_gauge(device)
        for request in orphans:
            self._retry(request, RETRY_FAILOVER, exclude=device.index)

    def _reroute_after_failure(self, failed_index: int) -> None:
        if self.planner is not None and self._plan is not None:
            try:
                self._plan = self.planner.rebalance_after_failure(
                    self._plan, failed_index
                )
            except KeyError:
                pass  # the failed device carried no planned streams
            else:
                self._stream_device = self._resolve_routes(self._plan)
                return
        # Planner-less (or unplanned device): round-robin the failed
        # device's streams over the healthy survivors.
        healthy = [d.index for d in self.devices if not d.dead]
        reassigned = 0
        for name in sorted(self._stream_device):
            if self._stream_device[name] == failed_index:
                if healthy:
                    self._stream_device[name] = healthy[reassigned % len(healthy)]
                    reassigned += 1
                else:
                    del self._stream_device[name]

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def serve(self, requests) -> ServingReport:
        """Run the full simulation over ``requests``; returns the report.

        Every request is resolved by the end of the run — completed, or
        shed with an explicit reason — because all wake-ups are
        scheduled on the event queue and the simulator drains it.
        """
        requests = sorted(requests, key=lambda r: (r.arrival_us, r.request_id))
        pool = None
        if self.workers > 1:
            from repro.core.parallel import WorkerPool

            head = self.devices[0].engine
            pool = WorkerPool(
                head.config, head.weights, self.workers,
                telemetry=self.telemetry, local_engine=head,
            )
            if pool.mode != "pool":
                # Degraded environment: running inline on the device
                # engines keeps their span trees and statistics.
                pool.close()
                pool = None
        self._pool = pool
        try:
            for device in self.devices:
                fail = device.fault_plan.device_fail
                if fail is not None:
                    self._sim.schedule(
                        fail.at_us, (lambda d: lambda: self._fail_device(d))(device)
                    )
            for request in requests:
                self._sim.schedule(
                    request.arrival_us, (lambda r: lambda: self._arrive(r))(request)
                )
            duration = self._sim.run()
        finally:
            self._pool = None
            if pool is not None:
                pool.close()
        if self.telemetry is not None:
            horizon = max(duration, 1)
            for device in self.devices:
                self.telemetry.gauge(
                    "repro_serve_device_utilization", device=device.index
                ).set(device.busy_us / horizon)
        return ServingReport(
            completed=tuple(self._completed),
            shed=dict(self._shed),
            retries=dict(self._retries),
            device_failures=self._device_failures,
            event_log=tuple(self._events),
            duration_us=duration,
            device_busy_us=tuple(d.busy_us for d in self.devices),
            offered=self._offered,
        )


def build_fleet(weights, num_devices: int, config=None) -> list:
    """Build ``num_devices`` engines sharing one set of host weights.

    ``weights`` is a :class:`~repro.core.weights.HostWeights`;  every
    device runs the same deployed model, as on a real multi-CSD node.
    """
    from repro.core.engine import CSDInferenceEngine

    if num_devices < 1:
        raise ValueError(f"num_devices must be >= 1, got {num_devices}")
    if config is None:
        from repro.core.config import EngineConfig

        config = EngineConfig(dimensions=weights.dimensions)
    return [CSDInferenceEngine(config, weights) for _ in range(num_devices)]
