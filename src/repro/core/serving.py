"""Fleet serving simulator: queueing, dynamic batching, failover.

The paper positions the SmartSSD as "a scalable solution ... allowing for
the installation of multiple devices within a single node"; the ROADMAP's
north star is serving heavy traffic across such a fleet.  This module is
the load-bearing subsystem for that claim: a deterministic discrete-event
simulator that drives N simulated CSD devices from per-stream request
queues, on the same simulated clock as everything else in the repo —
no wall clock anywhere, so two runs with one seed produce *identical*
event logs, metrics, and probabilities.

Mechanics
---------
* **Dynamic batching** — each device accumulates pending windows and
  executes them as one :meth:`~repro.core.engine.CSDInferenceEngine.infer_batch`
  call once ``max_batch`` requests are waiting or the oldest has waited
  ``max_wait_us``; the numeric results are bit-exact with calling
  ``infer_batch`` directly on the same windows (the batch path *is* the
  direct path).
* **Admission control** — per-device queues are bounded at
  ``queue_depth``; arrivals beyond the bound are shed explicitly and
  counted, never silently dropped.
* **Timeout + retry-with-failover** — a request whose attempt has waited
  past ``timeout_us`` is retried on the least-loaded healthy device; a
  :class:`~repro.hw.faults.FaultPlan` device failure kills a drive
  mid-run, aborts its in-flight batch, fails over its queue, and
  re-routes its streams using
  :meth:`~repro.core.fleet.FleetPlanner.rebalance_after_failure`.
* **Telemetry** — full instrumentation under the ``repro.telemetry/v1``
  contract (see ``docs/observability.md`` and ``docs/serving.md``):
  queue-depth gauges, batch-size and end-to-end latency histograms,
  shed/retry counters, and per-device ``serve.batch`` spans on the
  simulated microsecond timeline.

Time is integer simulated microseconds throughout, driven by the same
:class:`~repro.hw.sim.Simulator` event core the pipeline cross-validation
uses.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.core.fleet import FleetPlan, FleetPlanner, MonitoredStream
from repro.core.sessions import SessionConfig, SessionManager
from repro.hw.faults import FaultPlan
from repro.hw.sim import Simulator

#: Shed reasons (the ``reason`` label of ``repro_serve_shed_total``).
SHED_QUEUE_FULL = "queue_full"
SHED_NO_DEVICE = "no_device"
SHED_RETRIES = "retries"
SHED_QUARANTINED = "quarantined"

#: Retry reasons (the ``reason`` label of ``repro_serve_retries_total``).
RETRY_TIMEOUT = "timeout"
RETRY_FAILOVER = "failover"


def nearest_rank_percentile(values: np.ndarray, percentile: float) -> float:
    """Nearest-rank percentile of a 1-D sample; NaN for an empty one.

    The single definition both serving reports use (it was once duplicated
    in each, and the copies could drift).  ``values`` need not be sorted.
    """
    if not 0 < percentile <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {percentile}")
    ordered = np.sort(np.asarray(values))
    if ordered.size == 0:
        return float("nan")
    rank = max(1, math.ceil(percentile / 100.0 * ordered.size))
    return float(ordered[rank - 1])


@dataclasses.dataclass(frozen=True)
class ServingConfig:
    """Policy knobs of the fleet server.

    Parameters
    ----------
    max_batch:
        Largest dynamic batch a device executes in one ``infer_batch``.
    max_wait_us:
        Longest the oldest pending request may wait before a partial
        batch is flushed (0 = flush immediately, no batching delay).
    queue_depth:
        Bound on each device's pending queue; arrivals beyond it are
        shed with reason ``queue_full``.
    timeout_us:
        Per-attempt deadline: a request still queued this long after its
        (re-)enqueue is pulled from the batch and retried elsewhere.
        Should exceed ``max_wait_us`` or every request times out.
    max_retries:
        Additional attempts (timeout or failover) before a request is
        shed with reason ``retries``.
    """

    max_batch: int = 16
    max_wait_us: int = 2_000
    queue_depth: int = 64
    timeout_us: int = 50_000
    max_retries: int = 2

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {self.max_wait_us}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.timeout_us <= 0:
            raise ValueError(f"timeout_us must be positive, got {self.timeout_us}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")


@dataclasses.dataclass
class ServingRequest:
    """One window awaiting classification."""

    request_id: int
    stream: str
    sequence: np.ndarray
    arrival_us: int
    attempts: int = 0
    enqueued_us: int = 0


@dataclasses.dataclass(frozen=True)
class CompletedRequest:
    """A served request: where it ran, what it scored, when it finished."""

    request_id: int
    stream: str
    sequence: np.ndarray
    device: int
    probability: float
    arrival_us: int
    completion_us: int
    attempts: int

    @property
    def latency_us(self) -> int:
        return self.completion_us - self.arrival_us


@dataclasses.dataclass(frozen=True)
class ServingReport:
    """Outcome of one simulated serving run."""

    completed: tuple
    shed: dict
    retries: dict
    device_failures: int
    event_log: tuple
    duration_us: int
    device_busy_us: tuple
    offered: int

    @property
    def completed_count(self) -> int:
        return len(self.completed)

    @property
    def shed_count(self) -> int:
        return sum(self.shed.values())

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests that were not served."""
        if self.offered == 0:
            return 0.0
        return self.shed_count / self.offered

    def latencies_us(self) -> np.ndarray:
        """Sorted end-to-end latencies of completed requests."""
        return np.sort(
            np.array([c.latency_us for c in self.completed], dtype=np.int64)
        )

    def latency_percentile_us(self, percentile: float) -> float:
        """Nearest-rank percentile of completed end-to-end latency."""
        return nearest_rank_percentile(self.latencies_us(), percentile)

    def device_utilization(self) -> tuple:
        """Per-device busy fraction over the whole run."""
        horizon = max(self.duration_us, 1)
        return tuple(busy / horizon for busy in self.device_busy_us)


def generate_workload(
    streams,
    duration_us: int,
    sequence_length: int,
    vocab_size: int = 278,
    seed: int = 0,
) -> list:
    """Seeded per-stream Poisson arrivals with random windows.

    Each :class:`~repro.core.fleet.MonitoredStream` produces windows at
    its ``windows_per_second`` rate with exponential inter-arrivals from
    an RNG derived from ``(seed, stream index)`` — fully reproducible,
    independent of stream order elsewhere.  Returns
    :class:`ServingRequest` objects sorted by ``(arrival_us, stream)``
    with dense request ids.
    """
    if duration_us <= 0:
        raise ValueError(f"duration_us must be positive, got {duration_us}")
    pending = []
    for index, stream in enumerate(streams):
        rng = np.random.default_rng([seed, index])
        mean_gap_us = 1e6 / stream.windows_per_second
        clock = 0.0
        while True:
            clock += rng.exponential(mean_gap_us)
            arrival = int(round(clock))
            if arrival >= duration_us:
                break
            sequence = rng.integers(0, vocab_size, size=sequence_length,
                                    dtype=np.int64)
            pending.append((arrival, stream.name, sequence))
    pending.sort(key=lambda item: (item[0], item[1]))
    return [
        ServingRequest(request_id=i, stream=name, sequence=seq, arrival_us=arrival)
        for i, (arrival, name, seq) in enumerate(pending)
    ]


@dataclasses.dataclass(frozen=True)
class TokenArrival:
    """One API-call token of one monitored stream (session-mode input)."""

    stream: str
    token: int
    arrival_us: int


@dataclasses.dataclass(frozen=True)
class StreamVerdictRecord:
    """A window verdict emitted by the session-mode fleet.

    ``latency_us`` is arrival → delivery for the token that completed
    the window (-1 when the completing token is unknown, which only
    happens for records built by hand).
    """

    stream: str
    window_index: int
    probability: float
    is_ransomware: bool
    device: int
    completion_us: int
    latency_us: int = -1


@dataclasses.dataclass(frozen=True)
class SessionServingReport:
    """Outcome of one simulated session-mode (token-stream) serving run."""

    verdicts: tuple
    tokens_offered: int
    tokens_shed: dict
    migrated_sessions: int
    device_failures: int
    event_log: tuple
    duration_us: int
    device_busy_us: tuple
    token_latencies: tuple      # per-token arrival → tick-completion, us
    session_stats: tuple        # one SessionManager.stats() dict per device

    @property
    def verdict_count(self) -> int:
        return len(self.verdicts)

    @property
    def shed_count(self) -> int:
        return sum(self.tokens_shed.values())

    def token_latency_percentile_us(self, percentile: float) -> float:
        """Nearest-rank percentile of per-token serving latency."""
        return nearest_rank_percentile(
            np.array(self.token_latencies, dtype=np.int64), percentile
        )

    def verdict_latency_percentile_us(self, percentile: float) -> float:
        """Nearest-rank percentile of per-verdict delivery latency."""
        return nearest_rank_percentile(
            np.array([v.latency_us for v in self.verdicts], dtype=np.int64),
            percentile,
        )

    def device_utilization(self) -> tuple:
        horizon = max(self.duration_us, 1)
        return tuple(busy / horizon for busy in self.device_busy_us)


def generate_token_workload(
    streams,
    duration_us: int,
    tokens_per_second: float,
    vocab_size: int = 278,
    seed: int = 0,
) -> list:
    """Seeded per-stream Poisson token arrivals (session-mode workload).

    The token-level sibling of :func:`generate_workload`: each stream
    emits single API-call tokens at ``tokens_per_second`` with
    exponential inter-arrivals from an RNG derived from ``(seed, stream
    index)``.  Returns :class:`TokenArrival` sorted by
    ``(arrival_us, stream)``.
    """
    if duration_us <= 0:
        raise ValueError(f"duration_us must be positive, got {duration_us}")
    if tokens_per_second <= 0:
        raise ValueError(
            f"tokens_per_second must be positive, got {tokens_per_second}"
        )
    arrivals = []
    for index, stream in enumerate(streams):
        rng = np.random.default_rng([seed, index])
        mean_gap_us = 1e6 / tokens_per_second
        clock = 0.0
        while True:
            clock += rng.exponential(mean_gap_us)
            arrival = int(round(clock))
            if arrival >= duration_us:
                break
            token = int(rng.integers(0, vocab_size))
            arrivals.append(TokenArrival(stream=stream.name, token=token,
                                         arrival_us=arrival))
    arrivals.sort(key=lambda a: (a.arrival_us, a.stream))
    return arrivals


class _Device:
    """One simulated drive: an engine, a bounded queue, a health flag."""

    __slots__ = (
        "index", "engine", "fault_plan", "service_us", "queue", "busy",
        "dead", "current_batch", "batch_start_us", "busy_us", "batches",
        "pending_task", "sessions", "token_buffer", "current_tick",
        "buffer_streams", "wake_at",
    )

    def __init__(self, index: int, engine, fault_plan: FaultPlan):
        self.index = index
        self.engine = engine
        self.fault_plan = fault_plan
        self.service_us = engine.sequence_microseconds()
        self.queue: list = []
        self.busy = False
        self.dead = False
        self.current_batch = None   # (batch_id, [ServingRequest, ...])
        self.batch_start_us = 0
        self.busy_us = 0
        self.batches = 0
        self.pending_task = None    # (batch_id, WorkerPool handle)
        self.sessions = None        # SessionManager (session mode only)
        self.token_buffer: list = []
        self.buffer_streams: dict = {}  # stream -> buffered-token count
        self.wake_at = None         # armed flush deadline, if any
        self.current_tick = None    # (tick_id, [TokenArrival], [verdicts])


class FleetServer:
    """Deterministic discrete-event server for a node's CSD fleet.

    Parameters
    ----------
    engines:
        One loaded :class:`~repro.core.engine.CSDInferenceEngine` per
        simulated device; all must share the model dimensions.
    streams:
        The monitored streams (also the workload's rate model).
    config:
        Batching/queueing/retry policy.
    planner:
        Optional :class:`~repro.core.fleet.FleetPlanner`; when given,
        streams are routed by its first-fit plan and device failures
        re-route via ``rebalance_after_failure``.  When the plan (or a
        rebalance) calls for more devices than the fleet has, the
        overflow spills round-robin onto the healthy devices and
        admission control sheds what the node cannot absorb.  Without a
        planner, streams are routed round-robin and failover re-routes
        round-robin over the healthy survivors.
    fault_plans:
        Mapping of device index to :class:`~repro.hw.faults.FaultPlan`;
        ``device_fail`` / ``device_degrade`` faults drive the failover
        and degradation paths.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; observation-only,
        never alters scheduling or numerics.
    workers:
        With ``workers > 1`` the devices' numeric batch work (the real
        ``infer_batch`` forward passes) offloads to one shared
        :class:`~repro.core.parallel.WorkerPool`, overlapping host
        computation across devices between simulated events.  Scheduling
        stays on the simulated clock, so the event log, completions, and
        probabilities are identical to ``workers=1`` (scheduling never
        consults the probabilities).  Requires a homogeneous fleet: all
        engines sharing one config and one weights object (what
        :func:`build_fleet` builds).  Per-engine ``csd.*`` span trees
        and ``sequences_processed`` stay with the workers in this mode;
        metrics merge exactly (see ``docs/performance.md``).
    router:
        Optional callable ``stream_name -> device index | None``.  When
        given it replaces the static stream→device dict for every
        routing decision (arrivals, failover re-buffering), which is how
        the control plane implements shard-affine routing over a stream
        population that is not known up front (see
        ``docs/control_plane.md``).  The callable must be deterministic.
    on_device_failed:
        Optional callable ``device_index -> None`` invoked when a fault
        plan kills a device *before* its sessions migrate.  With a
        ``router`` this replaces the built-in rerouting: the callback
        owner (the control plane) reassigns the dead device's shards so
        the subsequent checkpoint migration lands per its placement
        policy.
    on_verdict:
        Optional callable invoked with every
        :class:`StreamVerdictRecord` the moment it is delivered (on the
        simulated clock) — the hook the response subsystem
        (:class:`~repro.response.policy.FleetResponder`) uses to close
        the verdict → action loop.  If the callable has a ``bind``
        method it is called with this server first, so a bare responder
        can be passed directly.  Actions are available immediately:
        :meth:`quarantine_stream` sheds the stream's future arrivals
        (``tokens_shed["quarantined"]``), :meth:`kill_stream`
        additionally drops its session state.
    """

    def __init__(
        self,
        engines,
        streams,
        config: ServingConfig | None = None,
        planner: FleetPlanner | None = None,
        fault_plans: dict | None = None,
        telemetry=None,
        workers: int = 0,
        router=None,
        on_device_failed=None,
        on_verdict=None,
    ):
        engines = list(engines)
        if not engines:
            raise ValueError("a fleet needs at least one device")
        dims = engines[0].config.dimensions
        for engine in engines[1:]:
            if engine.config.dimensions != dims:
                raise ValueError("all fleet engines must share model dimensions")
        self.workers = int(workers)
        if self.workers > 1:
            head = engines[0]
            for engine in engines[1:]:
                if engine.config != head.config or engine.weights is not head.weights:
                    raise ValueError(
                        "workers > 1 requires a homogeneous fleet: every "
                        "engine must share one config and one weights "
                        "object (use build_fleet)"
                    )
        self.config = config or ServingConfig()
        self.streams = list(streams)
        self.planner = planner
        self.telemetry = telemetry
        self._router = router
        self._on_device_failed = on_device_failed
        if on_verdict is not None and hasattr(on_verdict, "bind"):
            on_verdict.bind(self)
        self._on_verdict = on_verdict
        self._quarantined: set = set()
        if router is not None and planner is not None:
            raise ValueError("router and planner are mutually exclusive")
        fault_plans = fault_plans or {}
        self.devices = [
            _Device(i, engine, fault_plans.get(i, FaultPlan()))
            for i, engine in enumerate(engines)
        ]
        if telemetry is not None:
            for engine in engines:
                engine.attach_telemetry(telemetry)

        self._plan: FleetPlan | None = None
        if planner is not None:
            self._plan = planner.plan(self.streams)
            self._stream_device = self._resolve_routes(self._plan)
        else:
            self._stream_device = {
                stream.name: i % len(self.devices)
                for i, stream in enumerate(self.streams)
            }

        self._sim = Simulator()
        self._events: list = []
        self._completed: list = []
        self._shed: dict = {}
        self._retries: dict = {}
        self._device_failures = 0
        self._offered = 0
        self._batch_counter = 0
        self._pool = None  # live only inside serve() when workers > 1

        # Session (token-stream) mode state; populated by begin_tokens().
        self._token_mode = False
        self._tokens_offered = 0
        self._tokens_shed: dict = {}
        self._verdict_records: list = []
        self._token_latencies: list = []
        self._migrated_sessions = 0
        self._tick_counter = 0
        self._token_step_us: dict = {}
        self._session_config: SessionConfig | None = None
        self._session_backend: str | None = None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _resolve_routes(self, plan: FleetPlan) -> dict:
        """Map streams to physical devices, spilling oversubscribed plans.

        The planner sizes an *ideal* fleet; this server has a fixed one.
        Planned device indices beyond the physical fleet (an
        oversubscribed plan or rebalance) spill round-robin onto the
        healthy devices — admission control then sheds what the fleet
        truly cannot absorb, which is the honest failure mode for an
        undersized node.  Streams are unroutable only when no healthy
        device exists at all.
        """
        healthy = [d.index for d in self.devices if not d.dead]
        routes: dict = {}
        for assignment in plan.assignments:
            target = assignment.device_index
            if target >= len(self.devices) or self.devices[target].dead:
                if not healthy:
                    continue
                target = healthy[assignment.device_index % len(healthy)]
            for stream in assignment.streams:
                routes[stream.name] = target
        return routes

    def _routable_device(self, index) -> "_Device | None":
        """The healthy physical device at ``index``, if any."""
        if index is None or not 0 <= index < len(self.devices):
            return None
        device = self.devices[index]
        return None if device.dead else device

    def _route(self, stream: str) -> "_Device | None":
        """Resolve a stream to its healthy device (router or static dict)."""
        if self._router is not None:
            return self._routable_device(self._router(stream))
        return self._routable_device(self._stream_device.get(stream))

    def _healthy_devices(self, exclude: int | None = None) -> list:
        devices = [d for d in self.devices if not d.dead and d.index != exclude]
        if not devices:  # fall back to the excluded device if it is all we have
            devices = [d for d in self.devices if not d.dead]
        return devices

    # ------------------------------------------------------------------
    # Telemetry + event-log helpers (observation only)
    # ------------------------------------------------------------------

    def _log(self, kind: str, **details) -> None:
        self._events.append(
            (self._sim.now, kind, tuple(sorted(details.items())))
        )

    def _set_queue_gauge(self, device: _Device) -> None:
        if self.telemetry is not None:
            self.telemetry.gauge(
                "repro_serve_queue_depth", device=device.index
            ).set(len(device.queue))

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------

    def _arrive(self, request: ServingRequest) -> None:
        self._offered += 1
        if self.telemetry is not None:
            self.telemetry.counter("repro_serve_requests_total").inc()
        self._log("arrival", request=request.request_id, stream=request.stream)
        device = self._route(request.stream)
        if device is None:
            self._shed_request(request, SHED_NO_DEVICE)
            return
        self._admit(device, request)

    def _admit(self, device: _Device, request: ServingRequest) -> None:
        if len(device.queue) >= self.config.queue_depth:
            self._shed_request(request, SHED_QUEUE_FULL)
            return
        request.enqueued_us = self._sim.now
        device.queue.append(request)
        self._set_queue_gauge(device)
        self._log("enqueue", request=request.request_id, device=device.index)
        self._maybe_flush(device)

    def _shed_request(self, request: ServingRequest, reason: str) -> None:
        self._shed[reason] = self._shed.get(reason, 0) + 1
        if self.telemetry is not None:
            self.telemetry.counter("repro_serve_shed_total", reason=reason).inc()
        self._log("shed", request=request.request_id, reason=reason)

    def _retry(self, request: ServingRequest, reason: str,
               exclude: int | None = None) -> None:
        request.attempts += 1
        if request.attempts > self.config.max_retries:
            self._shed_request(request, SHED_RETRIES)
            return
        self._retries[reason] = self._retries.get(reason, 0) + 1
        if self.telemetry is not None:
            self.telemetry.counter("repro_serve_retries_total", reason=reason).inc()
        self._log("retry", request=request.request_id, reason=reason)
        candidates = self._healthy_devices(exclude=exclude)
        if not candidates:
            self._shed_request(request, SHED_NO_DEVICE)
            return
        target = min(candidates, key=lambda d: (len(d.queue), d.index))
        self._admit(target, request)

    # ------------------------------------------------------------------
    # Dynamic batching
    # ------------------------------------------------------------------

    def _maybe_flush(self, device: _Device) -> None:
        """Flush if the batching policy says so, else arm a deadline wake."""
        if device.dead or device.busy or not device.queue:
            return
        now = self._sim.now
        oldest_wait = now - device.queue[0].enqueued_us
        if (len(device.queue) >= self.config.max_batch
                or oldest_wait >= self.config.max_wait_us):
            self._execute_batch(device)
            return
        wake_at = device.queue[0].enqueued_us + self.config.max_wait_us
        self._sim.schedule(wake_at - now, lambda: self._maybe_flush(device))

    def _execute_batch(self, device: _Device) -> None:
        now = self._sim.now
        batch: list = []
        timed_out: list = []
        while device.queue and len(batch) < self.config.max_batch:
            request = device.queue.pop(0)
            if now - request.enqueued_us >= self.config.timeout_us:
                timed_out.append(request)
            else:
                batch.append(request)
        self._set_queue_gauge(device)
        if batch:
            # Launch before processing retries: a retry may re-admit to
            # this device, and the busy flag keeps that from re-entering
            # the flush path mid-launch.
            self._batch_counter += 1
            batch_id = self._batch_counter
            device.busy = True
            device.current_batch = (batch_id, batch)
            device.batch_start_us = now
            if self._pool is not None:
                # Start the real forward pass now; it overlaps with other
                # devices' work until the simulated completion event
                # collects it in _complete_batch.
                device.pending_task = (
                    batch_id,
                    self._pool.submit_infer(
                        np.stack([request.sequence for request in batch])
                    ),
                )
            slowdown = device.fault_plan.service_slowdown(now)
            service_us = max(
                1, math.ceil(len(batch) * device.service_us * slowdown)
            )
            self._log(
                "batch_start", batch=batch_id, device=device.index,
                size=len(batch), requests=tuple(r.request_id for r in batch),
                service_us=service_us,
            )
            self._sim.schedule(
                service_us, lambda: self._complete_batch(device, batch_id)
            )
        for request in timed_out:
            self._retry(request, RETRY_TIMEOUT, exclude=device.index)
        if not batch:
            self._maybe_flush(device)  # everything timed out; look again

    def _complete_batch(self, device: _Device, batch_id: int) -> None:
        if device.dead or device.current_batch is None:
            return  # aborted by a device failure
        current_id, batch = device.current_batch
        if current_id != batch_id:
            return  # stale completion event
        now = self._sim.now
        if device.pending_task is not None and device.pending_task[0] == batch_id:
            probabilities = self._pool.result(device.pending_task[1])
            device.pending_task = None
        else:
            sequences = np.stack([request.sequence for request in batch])
            probabilities = device.engine.infer_batch(sequences).probabilities
        device.busy = False
        device.current_batch = None
        device.busy_us += now - device.batch_start_us
        device.batches += 1
        for request, probability in zip(batch, probabilities):
            record = CompletedRequest(
                request_id=request.request_id,
                stream=request.stream,
                sequence=request.sequence,
                device=device.index,
                probability=float(probability),
                arrival_us=request.arrival_us,
                completion_us=now,
                attempts=request.attempts,
            )
            self._completed.append(record)
        if self.telemetry is not None:
            telemetry = self.telemetry
            telemetry.counter("repro_serve_completed_total").inc(len(batch))
            telemetry.counter("repro_serve_batches_total").inc()
            telemetry.histogram("repro_serve_batch_size").observe(len(batch))
            for request in batch:
                telemetry.histogram("repro_serve_latency_seconds").observe(
                    (now - request.arrival_us) * 1e-6
                )
            telemetry.tracer.record(
                "serve.batch", device.batch_start_us, now,
                attributes={
                    "device": device.index, "batch_size": len(batch),
                    "unit": "us",
                },
            )
        self._log(
            "batch_complete", batch=batch_id, device=device.index,
            requests=tuple(r.request_id for r in batch),
            probabilities=tuple(float(p) for p in probabilities),
        )
        self._maybe_flush(device)

    # ------------------------------------------------------------------
    # Failure + failover
    # ------------------------------------------------------------------

    def _fail_device(self, device: _Device) -> None:
        if device.dead:
            return
        now = self._sim.now
        device.dead = True
        self._device_failures += 1
        if self.telemetry is not None:
            self.telemetry.counter("repro_serve_device_failures_total").inc()
        self._log("device_failed", device=device.index)
        if self._router is not None:
            if self._on_device_failed is not None:
                self._on_device_failed(device.index)
        else:
            self._reroute_after_failure(device.index)
        if device.sessions is not None:
            self._failover_sessions(device)
            return
        orphans: list = []
        if device.current_batch is not None:
            batch_id, batch = device.current_batch
            self._log(
                "batch_abort", batch=batch_id, device=device.index,
                requests=tuple(r.request_id for r in batch),
            )
            device.busy_us += now - device.batch_start_us
            device.busy = False
            device.current_batch = None
            if device.pending_task is not None:
                if self._pool is not None:
                    self._pool.discard(device.pending_task[1])
                device.pending_task = None
            orphans.extend(batch)
        orphans.extend(device.queue)
        device.queue = []
        self._set_queue_gauge(device)
        for request in orphans:
            self._retry(request, RETRY_FAILOVER, exclude=device.index)

    def _reroute_after_failure(self, failed_index: int) -> None:
        if self.planner is not None and self._plan is not None:
            try:
                self._plan = self.planner.rebalance_after_failure(
                    self._plan, failed_index
                )
            except KeyError:
                pass  # the failed device carried no planned streams
            else:
                self._stream_device = self._resolve_routes(self._plan)
                return
        # Planner-less (or unplanned device): round-robin the failed
        # device's streams over the healthy survivors.
        healthy = [d.index for d in self.devices if not d.dead]
        reassigned = 0
        for name in sorted(self._stream_device):
            if self._stream_device[name] == failed_index:
                if healthy:
                    self._stream_device[name] = healthy[reassigned % len(healthy)]
                    reassigned += 1
                else:
                    del self._stream_device[name]

    # ------------------------------------------------------------------
    # Session (token-stream) mode
    # ------------------------------------------------------------------

    def _token_arrive(self, arrival: TokenArrival) -> None:
        self._tokens_offered += 1
        if arrival.stream in self._quarantined:
            self._shed_token(arrival, SHED_QUARANTINED)
            return
        device = self._route(arrival.stream)
        if device is None:
            self._shed_token(arrival, SHED_NO_DEVICE)
            return
        self._buffer_token(device, arrival)

    def _buffer_token(self, device: _Device, arrival: TokenArrival) -> None:
        if len(device.token_buffer) >= self.config.queue_depth:
            self._shed_token(arrival, SHED_QUEUE_FULL)
            return
        device.token_buffer.append((self._sim.now, arrival))
        streams = device.buffer_streams
        streams[arrival.stream] = streams.get(arrival.stream, 0) + 1
        self._maybe_flush_tokens(device)

    def _shed_token(self, arrival: TokenArrival, reason: str) -> None:
        self._tokens_shed[reason] = self._tokens_shed.get(reason, 0) + 1
        self._log("token_shed", stream=arrival.stream, reason=reason)

    def _maybe_flush_tokens(self, device: _Device) -> None:
        """Run a tick if the batching policy says so, else arm a wake.

        The same policy shape as request-mode ``_maybe_flush``, counted
        in *distinct streams*: a tick steps at most one token per stream
        (per-stream order is sacred), so only cross-stream accumulation
        widens the batched matmul.
        """
        if device.dead or device.busy or not device.token_buffer:
            return
        now = self._sim.now
        distinct = len(device.buffer_streams)
        oldest_wait = now - device.token_buffer[0][0]
        if (distinct >= self.config.max_batch
                or oldest_wait >= self.config.max_wait_us):
            self._execute_tick(device)
            return
        wake_at = device.token_buffer[0][0] + self.config.max_wait_us
        if device.wake_at != wake_at:
            # One armed wake per buffer head: re-arming on every arrival
            # would schedule O(buffer) no-op events per tick.
            device.wake_at = wake_at
            self._sim.schedule(wake_at - now, lambda: self._token_wake(device))

    def _token_wake(self, device: _Device) -> None:
        device.wake_at = None
        self._maybe_flush_tokens(device)

    def _execute_tick(self, device: _Device) -> None:
        """Step one buffered token per stream through the session manager.

        The numeric step runs at tick *launch* (host simulation is
        instantaneous on the simulated clock); verdict delivery waits for
        the simulated service completion.  Per-slot-row service cost is
        one LSTM timestep (``per_item_microseconds``), which is the whole
        point: smooth incremental cost instead of whole-window recompute
        bursts.
        """
        now = self._sim.now
        tick_tokens: dict = {}
        tick_arrivals: list = []
        rest: list = []
        for entry in device.token_buffer:
            arrival = entry[1]
            if arrival.stream in tick_tokens:
                rest.append(entry)
            else:
                tick_tokens[arrival.stream] = arrival.token
                tick_arrivals.append(arrival)
        device.token_buffer = rest
        device.wake_at = None
        streams = device.buffer_streams
        for stream in tick_tokens:
            remaining = streams[stream] - 1
            if remaining:
                streams[stream] = remaining
            else:
                del streams[stream]
        rows_before = device.sessions.stats()["slot_steps"]
        verdicts = device.sessions.step(tick_tokens)
        rows = device.sessions.stats()["slot_steps"] - rows_before
        self._tick_counter += 1
        tick_id = self._tick_counter
        device.busy = True
        device.batch_start_us = now
        device.current_tick = (tick_id, tick_arrivals, verdicts)
        step_us = self._token_step_us.get(device.index)
        if step_us is None:
            step_us = device.engine.per_item_microseconds()
            self._token_step_us[device.index] = step_us
        slowdown = device.fault_plan.service_slowdown(now)
        service_us = max(1, math.ceil(max(rows, 1) * step_us * slowdown))
        self._log(
            "tick_start", tick=tick_id, device=device.index,
            streams=len(tick_arrivals), rows=rows, service_us=service_us,
        )
        self._sim.schedule(
            service_us, lambda: self._complete_tick(device, tick_id)
        )

    def _complete_tick(self, device: _Device, tick_id: int) -> None:
        if device.dead or device.current_tick is None:
            return  # handled by the failure path
        current_id, arrivals, verdicts = device.current_tick
        if current_id != tick_id:
            return  # stale wake
        now = self._sim.now
        device.busy = False
        device.current_tick = None
        device.busy_us += now - device.batch_start_us
        device.batches += 1
        self._deliver_tick(device, tick_id, arrivals, verdicts)
        self._maybe_flush_tokens(device)

    def _deliver_tick(self, device: _Device, tick_id: int, arrivals: list,
                      verdicts: list, aborted: bool = False) -> None:
        now = self._sim.now
        arrived_at: dict = {}
        for arrival in arrivals:
            self._token_latencies.append(now - arrival.arrival_us)
            arrived_at[arrival.stream] = arrival.arrival_us
        for verdict in verdicts:
            record = StreamVerdictRecord(
                stream=verdict.session,
                window_index=verdict.window_index,
                probability=verdict.probability,
                is_ransomware=verdict.is_ransomware,
                device=device.index,
                completion_us=now,
                latency_us=now - arrived_at.get(verdict.session, now),
            )
            self._verdict_records.append(record)
            if self._on_verdict is not None:
                self._on_verdict(record)
        self._log(
            "tick_complete", tick=tick_id, device=device.index,
            verdicts=len(verdicts), aborted=aborted,
        )

    def _failover_sessions(self, device: _Device) -> None:
        """Hand a dead device's session state to the survivors.

        The tick in flight at failure already advanced the session state
        (the step runs at launch), so its verdicts are delivered rather
        than dropped — the per-stream verdict sequence is invariant
        under failures; only timing shifts.  Every session the device
        held (resident or checkpointed) migrates as a checkpoint to the
        stream's re-routed device, along with the buffered tokens.
        """
        if device.current_tick is not None:
            device.busy_us += self._sim.now - device.batch_start_us
            device.busy = False
            tick_id, arrivals, verdicts = device.current_tick
            device.current_tick = None
            self._deliver_tick(device, tick_id, arrivals, verdicts,
                               aborted=True)
        migrated = 0
        for key in device.sessions.known_keys():
            target = self._route(key)
            if target is None or target.sessions is None:
                continue
            target.sessions.import_checkpoint(
                device.sessions.export_checkpoint(key)
            )
            migrated += 1
        self._migrated_sessions += migrated
        self._log("sessions_migrated", device=device.index, count=migrated)
        buffered = device.token_buffer
        device.token_buffer = []
        device.buffer_streams = {}
        device.wake_at = None
        for _, arrival in buffered:
            target = self._route(arrival.stream)
            if target is None:
                self._shed_token(arrival, SHED_NO_DEVICE)
                continue
            self._buffer_token(target, arrival)

    def begin_tokens(self, sessions: SessionConfig | None = None,
                     backend: str | None = None) -> None:
        """Enter session (token-stream) mode without running anything yet.

        Gives every device a fresh
        :class:`~repro.core.sessions.SessionManager` and schedules the
        fault plans.  Pair with :meth:`ingest_tokens` /
        :meth:`run_tokens_until` to step the simulation in bounded
        rounds (the control plane's loop), and :meth:`finish_tokens` to
        drain the queue and build the report.  :meth:`serve_tokens` is
        exactly this sequence in one call.
        """
        if self._token_mode:
            raise RuntimeError("token mode already begun")
        self._token_mode = True
        self._session_config = sessions or SessionConfig()
        self._session_backend = backend
        for device in self.devices:
            device.sessions = SessionManager(
                device.engine, self._session_config, backend=backend
            )
        for device in self.devices:
            fail = device.fault_plan.device_fail
            if fail is not None:
                self._sim.schedule(
                    fail.at_us, (lambda d: lambda: self._fail_device(d))(device)
                )

    def ingest_tokens(self, arrivals) -> int:
        """Schedule token arrivals (each at or after the current clock)."""
        if not self._token_mode:
            raise RuntimeError("call begin_tokens first")
        now = self._sim.now
        count = 0
        for arrival in arrivals:
            if arrival.arrival_us < now:
                raise ValueError(
                    f"arrival at {arrival.arrival_us}us is in the past "
                    f"(now={now}us)"
                )
            self._sim.schedule(
                arrival.arrival_us - now,
                (lambda a: lambda: self._token_arrive(a))(arrival),
            )
            count += 1
        return count

    def run_tokens_until(self, until_us: int | None = None,
                         max_events: int | None = None) -> int:
        """Fire queued events up to ``until_us``; returns the clock."""
        if not self._token_mode:
            raise RuntimeError("call begin_tokens first")
        return self._sim.run(max_events=max_events, until=until_us)

    def finish_tokens(self, max_events: int | None = 1_000_000
                      ) -> SessionServingReport:
        """Drain remaining events and build the session-mode report."""
        if not self._token_mode:
            raise RuntimeError("call begin_tokens first")
        duration = self._sim.run(max_events=max_events)
        if self.telemetry is not None:
            horizon = max(duration, 1)
            for device in self.devices:
                self.telemetry.gauge(
                    "repro_serve_device_utilization", device=device.index
                ).set(device.busy_us / horizon)
        return SessionServingReport(
            verdicts=tuple(self._verdict_records),
            tokens_offered=self._tokens_offered,
            tokens_shed=dict(self._tokens_shed),
            migrated_sessions=self._migrated_sessions,
            device_failures=self._device_failures,
            event_log=tuple(self._events),
            duration_us=duration,
            device_busy_us=tuple(d.busy_us for d in self.devices),
            token_latencies=tuple(self._token_latencies),
            session_stats=tuple(d.sessions.stats() for d in self.devices),
        )

    def serve_tokens(self, arrivals,
                     sessions: SessionConfig | None = None,
                     backend: str | None = None) -> SessionServingReport:
        """Run the session-mode simulation over a token-arrival schedule.

        Each device runs a :class:`~repro.core.sessions.SessionManager`
        over its affine streams (the same stream→device routing the
        request path uses), stepping one buffered token per stream per
        tick through one stacked batched matmul.  Device failures
        migrate session checkpoints to the re-routed devices, so
        monitoring continues without losing window state.  Deterministic
        like :meth:`serve`: one seed → identical event logs and verdicts.

        ``backend`` overrides the per-device kernel backend (see
        :mod:`repro.core.kernels.backends`); ``None`` uses each engine's
        configured backend.  Checkpoint migration between devices is
        backend-neutral, so mixed fleets stay bit-exact.
        """
        self.begin_tokens(sessions=sessions, backend=backend)
        self.ingest_tokens(sorted(arrivals, key=lambda a: (a.arrival_us, a.stream)))
        return self.finish_tokens()

    @property
    def clock_us(self) -> int:
        """Current simulated time in microseconds."""
        return self._sim.now

    @property
    def session_verdicts(self) -> list:
        """Live list of delivered :class:`StreamVerdictRecord` (read-only).

        Incremental callers (the control plane) slice from their last
        cursor instead of waiting for :meth:`finish_tokens`; treat the
        list as append-only.
        """
        return self._verdict_records

    # ------------------------------------------------------------------
    # Session-mode response actions (quarantine / kill)
    # ------------------------------------------------------------------

    @property
    def quarantined_streams(self) -> frozenset:
        """Streams currently shed at admission."""
        return frozenset(self._quarantined)

    def quarantine_stream(self, stream) -> None:
        """Shed all future arrivals for ``stream`` at admission.

        Already-buffered tokens still tick through (their session steps
        are in flight on the simulated clock); the stream's window state
        is kept so triage can continue to read it.  Idempotent.
        """
        self._quarantined.add(stream)
        self._log("stream_quarantined", stream=stream)

    def release_stream(self, stream) -> None:
        """Lift a quarantine (operator action after triage)."""
        if stream in self._quarantined:
            self._quarantined.discard(stream)
            self._log("stream_released", stream=stream)

    def kill_stream(self, stream) -> None:
        """Quarantine ``stream`` and drop its session state everywhere.

        The escalation beyond :meth:`quarantine_stream`: buffered tokens
        are discarded (counted as ``tokens_shed["quarantined"]``) and the
        owning device's session slot is closed, so the stream cannot
        produce further verdicts.  Idempotent.
        """
        self._quarantined.add(stream)
        for device in self.devices:
            if device.token_buffer:
                keep = []
                for entry in device.token_buffer:
                    if entry[1].stream == stream:
                        self._shed_token(entry[1], SHED_QUARANTINED)
                    else:
                        keep.append(entry)
                device.token_buffer = keep
                device.buffer_streams.pop(stream, None)
            if device.sessions is not None and stream in device.sessions.known_keys():
                device.sessions.close(stream)
        self._log("stream_killed", stream=stream)

    # ------------------------------------------------------------------
    # Session-mode fleet membership (drain / standby / rebalance)
    # ------------------------------------------------------------------

    def drain_device(self, index: int) -> int:
        """Gracefully take a session-mode device out of service.

        The same state hand-off as a failure — the in-flight tick's
        verdicts deliver (the step ran at launch), every held session
        migrates as a checkpoint to its re-routed device, buffered
        tokens re-buffer in order — but counted as a drain, not a
        failure.  The caller must re-route the device's streams *first*
        (reassign its shards, or rely on the planner-less round-robin by
        calling with the static dict in place).  Returns the number of
        sessions migrated.
        """
        device = self.devices[index]
        if device.dead:
            return 0
        if device.sessions is None:
            raise RuntimeError("drain_device requires session (token) mode")
        device.dead = True
        self._log("device_drained", device=device.index)
        if self._router is None:
            self._reroute_after_failure(device.index)
        before = self._migrated_sessions
        self._failover_sessions(device)
        return self._migrated_sessions - before

    def deactivate_device(self, index: int) -> None:
        """Hold an *empty* device out of service (autoscaling standby)."""
        device = self.devices[index]
        if device.dead:
            return
        if device.sessions is not None and device.sessions.known_keys():
            raise RuntimeError(
                "deactivate_device requires an empty device; use drain_device"
            )
        device.dead = True
        self._log("device_standby", device=device.index)

    def restore_device(self, index: int) -> None:
        """Return a drained/standby device to service, state reset.

        In session mode the device comes back with a fresh
        :class:`~repro.core.sessions.SessionManager` (post-upgrade, a
        real drive boots empty); the caller routes shards back to it.
        """
        device = self.devices[index]
        if not device.dead:
            return
        device.dead = False
        device.busy = False
        device.current_tick = None
        device.token_buffer = []
        device.buffer_streams = {}
        device.wake_at = None
        if self._token_mode:
            device.sessions = SessionManager(
                device.engine, self._session_config,
                backend=self._session_backend,
            )
        self._log("device_restored", device=device.index)

    def migrate_streams(self, from_index: int, to_index: int, streams) -> int:
        """Move live session state + buffered tokens between healthy devices.

        The shard-rebalancing primitive: unlike the failure/drain paths
        the source stays in service, so sessions are *released* (moved,
        counted ``migrated``) rather than copied.  The caller must have
        re-routed ``streams`` to ``to_index`` already.  Returns the
        number of sessions moved.
        """
        source = self.devices[from_index]
        target = self.devices[to_index]
        if source.sessions is None or target.sessions is None:
            raise RuntimeError("migrate_streams requires session (token) mode")
        if target.dead:
            raise ValueError(f"target device {to_index} is out of service")
        wanted = set(streams)
        moved = 0
        for key in source.sessions.known_keys():
            if key in wanted:
                target.sessions.import_checkpoint(source.sessions.release(key))
                moved += 1
        if moved:
            self._migrated_sessions += moved
            self._log("sessions_migrated", device=from_index, count=moved,
                      target=to_index)
        if wanted & source.buffer_streams.keys():
            keep: list = []
            moving: list = []
            for entry in source.token_buffer:
                if entry[1].stream in wanted:
                    moving.append(entry)
                else:
                    keep.append(entry)
            source.token_buffer = keep
            source.wake_at = None
            counts: dict = {}
            for entry in keep:
                stream = entry[1].stream
                counts[stream] = counts.get(stream, 0) + 1
            source.buffer_streams = counts
            for _, arrival in moving:
                self._buffer_token(target, arrival)
        return moved

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def serve(self, requests) -> ServingReport:
        """Run the full simulation over ``requests``; returns the report.

        Every request is resolved by the end of the run — completed, or
        shed with an explicit reason — because all wake-ups are
        scheduled on the event queue and the simulator drains it.
        """
        requests = sorted(requests, key=lambda r: (r.arrival_us, r.request_id))
        pool = None
        if self.workers > 1:
            from repro.core.parallel import WorkerPool

            head = self.devices[0].engine
            pool = WorkerPool(
                head.config, head.weights, self.workers,
                telemetry=self.telemetry, local_engine=head,
            )
            if pool.mode != "pool":
                # Degraded environment: running inline on the device
                # engines keeps their span trees and statistics.
                pool.close()
                pool = None
        self._pool = pool
        try:
            for device in self.devices:
                fail = device.fault_plan.device_fail
                if fail is not None:
                    self._sim.schedule(
                        fail.at_us, (lambda d: lambda: self._fail_device(d))(device)
                    )
            for request in requests:
                self._sim.schedule(
                    request.arrival_us, (lambda r: lambda: self._arrive(r))(request)
                )
            duration = self._sim.run()
        finally:
            self._pool = None
            if pool is not None:
                pool.close()
        if self.telemetry is not None:
            horizon = max(duration, 1)
            for device in self.devices:
                self.telemetry.gauge(
                    "repro_serve_device_utilization", device=device.index
                ).set(device.busy_us / horizon)
        return ServingReport(
            completed=tuple(self._completed),
            shed=dict(self._shed),
            retries=dict(self._retries),
            device_failures=self._device_failures,
            event_log=tuple(self._events),
            duration_us=duration,
            device_busy_us=tuple(d.busy_us for d in self.devices),
            offered=self._offered,
        )


def build_fleet(weights, num_devices: int, config=None) -> list:
    """Build ``num_devices`` engines sharing one set of host weights.

    ``weights`` is a :class:`~repro.core.weights.HostWeights`;  every
    device runs the same deployed model, as on a real multi-CSD node.
    """
    from repro.core.engine import CSDInferenceEngine

    if num_devices < 1:
        raise ValueError(f"num_devices must be >= 1, got {num_devices}")
    if config is None:
        from repro.core.config import EngineConfig

        config = EngineConfig(dimensions=weights.dimensions)
    return [CSDInferenceEngine(config, weights) for _ in range(num_devices)]
