"""Data-parallel execution backend: shared-memory worker pool.

Everything in this repo runs real LSTM forward passes on the host, so the
host-simulation throughput wall is one Python process on one core.  This
module breaks that wall without touching the numerics: a persistent
:class:`WorkerPool` forks N OS processes, broadcasts the engine's weight
arrays **once** through :mod:`multiprocessing.shared_memory` (the workers
build zero-copy ``np.ndarray`` views — the ``(4H, H+E)`` stacked gate
matrix is never pickled per call), shards batched work across the
workers, and merges results deterministically.

Determinism and exactness
-------------------------
* **Probabilities** — shards are contiguous row slices and rows are
  independent, so every worker computes exactly what the single-process
  path computes for its rows; results are concatenated in shard order and
  are bit-exact with ``workers=1`` at every
  :class:`~repro.core.config.OptimizationLevel`.
* **Telemetry** — each worker runs its shard under a private
  :class:`~repro.telemetry.Telemetry` and returns the metrics snapshot
  with the result; the parent folds snapshots in **shard order** through
  :meth:`~repro.telemetry.metrics.MetricRegistry.merge_snapshot` (the
  exact-merge counter/histogram semantics of the ``repro.telemetry/v1``
  contract), so merged counters and histograms equal the single-process
  values.  Worker-side span trees are not re-parented (documented in
  ``docs/performance.md``).
* **Fault tolerance** — a worker killed mid-shard is detected by
  liveness polling; its outstanding shards are retried on the surviving
  workers (``repro_parallel_retries_total``), falling back to in-process
  execution if the whole pool is gone.  Duplicate results from a retry
  race are dropped by task id; both copies are bit-identical, so the
  merge is unaffected.
* **Graceful degradation** — when ``fork`` or
  ``multiprocessing.shared_memory`` is unavailable (restricted
  sandboxes), the pool silently runs in-process
  (``repro_parallel_fallback_total{reason=...}``); construction never
  raises for environmental reasons.

The pool's own metrics (``repro_parallel_*``) are documented in
``docs/observability.md``; throughput guidance lives in
``docs/performance.md``.
"""

from __future__ import annotations

import queue as queue_module
import weakref

import numpy as np

from repro.core.config import EngineConfig
from repro.core.weights import GateWeights, HostWeights

#: Gate keys in the order weight arrays are packed into shared memory.
_GATE_ORDER = ("i", "f", "c", "o")

#: Seconds between liveness checks while waiting on shard results.
_POLL_SECONDS = 0.05

#: Seconds close() waits for workers to drain the shutdown sentinel.
_SHUTDOWN_GRACE_SECONDS = 2.0


def _pool_supported() -> tuple:
    """``(supported, reason)`` — can a fork + shared-memory pool run here?

    Split out (and probed at pool construction, not import) so restricted
    environments degrade at runtime and tests can monkeypatch the probe.
    """
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        return False, "no_fork"
    try:
        from multiprocessing import shared_memory  # noqa: F401 (probe)
    except ImportError:
        return False, "no_shared_memory"
    return True, ""


# ----------------------------------------------------------------------
# Shared-memory weight broadcast
# ----------------------------------------------------------------------


def _weight_arrays(weights: HostWeights) -> list:
    """``(key, float64 array)`` pairs covering every host parameter."""
    arrays = [("embedding", weights.embedding)]
    for gate in _GATE_ORDER:
        arrays.append((f"gate_{gate}_matrix", weights.gates[gate].matrix))
        arrays.append((f"gate_{gate}_bias", weights.gates[gate].bias))
    arrays.append(("fc_weights", weights.fc_weights))
    arrays.append(("fc_bias", np.array([weights.fc_bias], dtype=np.float64)))
    return arrays


def _pack_weights(weights: HostWeights):
    """Copy the host weights into one shared-memory block, once.

    Returns ``(shm, layout)`` where ``layout`` maps each array key to
    ``(offset, shape, transposed)``.  **Memory order is preserved**:
    the gate matrices arrive Fortran-contiguous (they are built from
    transposed Keras blocks), and NumPy's pairwise-sum reduction order —
    hence the float path's last-ULP rounding — follows the layout of its
    operands.  An F-ordered array is stored as its C-ordered transpose
    and viewed back through ``.T``, so worker-side views have the exact
    strides of the parent arrays and the numerics stay bit-identical.
    All arrays are float64, so offsets stay 8-byte aligned.
    """
    from multiprocessing import shared_memory

    arrays = _weight_arrays(weights)
    total = sum(array.nbytes for _, array in arrays)
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    layout = {}
    offset = 0
    for key, array in arrays:
        array = np.asarray(array, dtype=np.float64)
        transposed = (
            array.ndim == 2
            and array.flags["F_CONTIGUOUS"]
            and not array.flags["C_CONTIGUOUS"]
        )
        stored = np.ascontiguousarray(array.T if transposed else array)
        view = np.ndarray(stored.shape, dtype=np.float64,
                          buffer=shm.buf, offset=offset)
        view[...] = stored
        layout[key] = (offset, stored.shape, transposed)
        offset += stored.nbytes
    return shm, layout


def _weights_from_shared(shm, layout: dict) -> HostWeights:
    """Rebuild :class:`HostWeights` as zero-copy views over the block."""
    def view(key: str) -> np.ndarray:
        offset, shape, transposed = layout[key]
        array = np.ndarray(shape, dtype=np.float64, buffer=shm.buf, offset=offset)
        return array.T if transposed else array

    gates = {
        gate: GateWeights(
            name=gate,
            matrix=view(f"gate_{gate}_matrix"),
            bias=view(f"gate_{gate}_bias"),
        )
        for gate in _GATE_ORDER
    }
    return HostWeights(
        embedding=view("embedding"),
        gate_weights=gates,
        fc_weights=view("fc_weights"),
        fc_bias=float(view("fc_bias")[0]),
    )


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def _worker_main(shm, layout, config, task_queue, result_queue) -> None:
    """Worker loop: build an engine over the shared weights, serve shards.

    The :class:`~multiprocessing.shared_memory.SharedMemory` object and
    the config are inherited through ``fork`` (never pickled).  Each task
    runs under a fresh private Telemetry whose metrics snapshot rides
    back with the result for exact merging in the parent.
    """
    from repro.core.engine import CSDInferenceEngine
    from repro.telemetry import Telemetry

    engine = CSDInferenceEngine(config, _weights_from_shared(shm, layout))
    while True:
        task = task_queue.get()
        if task is None:
            break
        task_id, sequences = task
        try:
            telemetry = Telemetry()
            engine.attach_telemetry(telemetry)
            probabilities = engine.infer_batch(sequences).probabilities
            result_queue.put(
                (task_id, "ok", probabilities, telemetry.metrics.snapshot())
            )
        except Exception as exc:  # surface the failure, keep serving
            result_queue.put(
                (task_id, "error", f"{type(exc).__name__}: {exc}", None)
            )


class _Worker:
    """A forked worker process plus its private task queue."""

    __slots__ = ("index", "process", "queue", "alive")

    def __init__(self, index, process, task_queue):
        self.index = index
        self.process = process
        self.queue = task_queue
        self.alive = True


def _release_pool(processes, task_queues, shm) -> None:
    """Tear down worker processes and unlink the shared weight block.

    Module-level (not a method) so :class:`weakref.finalize` can run it
    after the pool object is gone — dropping the last reference to a
    pool, or interpreter exit, reclaims the OS resources either way.
    """
    import time

    for process, task_queue in zip(processes, task_queues):
        if process.is_alive():
            try:
                task_queue.put(None)
            except (OSError, ValueError):
                pass
    deadline = time.monotonic() + _SHUTDOWN_GRACE_SECONDS
    for process in processes:
        process.join(timeout=max(0.01, deadline - time.monotonic()))
    for process in processes:
        if process.is_alive():
            process.terminate()
    if shm is not None:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


class _TaskError:
    """Sentinel carrying a worker-side failure message to ``result()``."""

    __slots__ = ("message",)

    def __init__(self, message: str):
        self.message = message


class WorkerPool:
    """Persistent data-parallel inference backend.

    Parameters
    ----------
    config:
        Engine configuration every worker builds its engine from.
    weights:
        Host weights, broadcast once through shared memory.
    workers:
        Number of worker processes (``>= 1``).
    telemetry:
        Optional parent :class:`~repro.telemetry.Telemetry`; worker
        metric snapshots merge into it, and the pool's own
        ``repro_parallel_*`` metrics are recorded on it.
    local_engine:
        Engine to run shards on when the pool degrades to in-process
        execution (no fork/shared memory, or every worker died).  Built
        lazily from ``config``/``weights`` when not supplied.
    """

    def __init__(
        self,
        config: EngineConfig,
        weights: HostWeights,
        workers: int,
        telemetry=None,
        local_engine=None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.config = config
        self.weights = weights
        self.workers = int(workers)
        self.telemetry = telemetry
        self.mode = "inprocess"
        self._local_engine = local_engine
        self._workers: list = []
        self._shm = None
        self._finalizer = None
        self._closed = False
        self._next_task_id = 0
        self._round_robin = 0
        self._assigned: dict = {}    # task_id -> worker index
        self._payloads: dict = {}    # task_id -> sequences (for retry)
        self._done: dict = {}        # task_id -> (result, snapshot) | _TaskError
        self._merged: set = set()    # task_ids whose snapshot already merged
        self._discarded: set = set()
        self._result_queue = None

        supported, reason = _pool_supported()
        if not supported:
            self._fall_back(reason)
            return
        try:
            self._start_workers()
        except OSError:
            self._fall_back("start_failure")
            return
        self.mode = "pool"
        self._set_worker_gauge()

    # ------------------------------------------------------------------
    # Startup / degradation
    # ------------------------------------------------------------------

    def _start_workers(self) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        self._shm, layout = _pack_weights(self.weights)
        self._result_queue = ctx.Queue()
        try:
            for index in range(self.workers):
                task_queue = ctx.Queue()
                process = ctx.Process(
                    target=_worker_main,
                    args=(self._shm, layout, self.config, task_queue,
                          self._result_queue),
                    daemon=True,
                    name=f"repro-worker-{index}",
                )
                process.start()
                self._workers.append(_Worker(index, process, task_queue))
        except OSError:
            _release_pool([w.process for w in self._workers],
                          [w.queue for w in self._workers], self._shm)
            self._workers = []
            self._shm = None
            raise
        self._finalizer = weakref.finalize(
            self, _release_pool,
            [w.process for w in self._workers],
            [w.queue for w in self._workers],
            self._shm,
        )

    def _fall_back(self, reason: str) -> None:
        """Degrade to in-process execution; counted, never a crash."""
        self.mode = "inprocess"
        if self.telemetry is not None:
            self.telemetry.counter(
                "repro_parallel_fallback_total", reason=reason
            ).inc()
            self.telemetry.gauge("repro_parallel_workers").set(0)

    def _set_worker_gauge(self) -> None:
        if self.telemetry is not None:
            self.telemetry.gauge("repro_parallel_workers").set(
                sum(1 for worker in self._workers if worker.alive)
            )

    def _count_task(self, mode: str) -> None:
        if self.telemetry is not None:
            self.telemetry.counter("repro_parallel_tasks_total", mode=mode).inc()

    # ------------------------------------------------------------------
    # In-process execution (fallback + last-resort retry)
    # ------------------------------------------------------------------

    def _local_probabilities(self, sequences: np.ndarray) -> np.ndarray:
        engine = self._local_engine
        if engine is None:
            from repro.core.engine import CSDInferenceEngine

            engine = CSDInferenceEngine(self.config, self.weights)
            self._local_engine = engine
        if self.telemetry is not None and engine.telemetry is None:
            engine.attach_telemetry(self.telemetry)
        return engine.infer_batch(sequences).probabilities

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------

    def _live_workers(self) -> list:
        return [worker for worker in self._workers if worker.alive]

    def _next_worker(self):
        live = self._live_workers()
        if not live:
            return None
        worker = live[self._round_robin % len(live)]
        self._round_robin += 1
        return worker

    def submit_infer(self, sequences) -> int:
        """Queue one shard; returns a handle for :meth:`result`.

        Shards dispatch round-robin over the live workers.  In
        in-process mode the shard runs immediately on the local engine.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        sequences = np.ascontiguousarray(np.asarray(sequences, dtype=np.int64))
        task_id = self._next_task_id
        self._next_task_id += 1
        if self.mode == "inprocess":
            self._count_task("inprocess")
            self._done[task_id] = (self._local_probabilities(sequences), None)
            self._merged.add(task_id)
            return task_id
        worker = self._next_worker()
        if worker is None:
            self._fall_back("all_workers_dead")
            self._count_task("inprocess")
            self._done[task_id] = (self._local_probabilities(sequences), None)
            self._merged.add(task_id)
            return task_id
        self._count_task("pool")
        self._assigned[task_id] = worker.index
        self._payloads[task_id] = sequences
        worker.queue.put((task_id, sequences))
        return task_id

    def _reap_dead_workers(self) -> None:
        """Retry the shards of any worker that died mid-batch."""
        for worker in self._workers:
            if not worker.alive or worker.process.is_alive():
                continue
            worker.alive = False
            if self.telemetry is not None:
                self.telemetry.counter("repro_parallel_worker_deaths_total").inc()
            self._set_worker_gauge()
            orphaned = sorted(
                task_id for task_id, index in self._assigned.items()
                if index == worker.index
            )
            for task_id in orphaned:
                if task_id in self._discarded:
                    self._forget(task_id)
                    self._discarded.discard(task_id)
                    continue
                if self.telemetry is not None:
                    self.telemetry.counter("repro_parallel_retries_total").inc()
                target = self._next_worker()
                if target is None:
                    self._fall_back("all_workers_dead")
                    payload = self._payloads[task_id]
                    self._forget(task_id)
                    self._done[task_id] = (
                        self._local_probabilities(payload), None
                    )
                    self._merged.add(task_id)
                else:
                    self._assigned[task_id] = target.index
                    target.queue.put((task_id, self._payloads[task_id]))

    def _forget(self, task_id: int) -> None:
        self._assigned.pop(task_id, None)
        self._payloads.pop(task_id, None)

    def _pump(self) -> None:
        """Collect one result (or poll worker liveness on timeout)."""
        try:
            task_id, status, payload, snapshot = self._result_queue.get(
                timeout=_POLL_SECONDS
            )
        except queue_module.Empty:
            self._reap_dead_workers()
            return
        if task_id in self._discarded:
            self._discarded.discard(task_id)
            self._forget(task_id)
            return
        if task_id in self._done:
            return  # duplicate from a retry race; copies are identical
        self._forget(task_id)
        if status == "error":
            self._done[task_id] = _TaskError(payload)
        else:
            self._done[task_id] = (payload, snapshot)

    def result(self, task_id: int) -> np.ndarray:
        """Block for one shard's probabilities.

        Telemetry snapshots merge here — at collection, in the caller's
        (deterministic) collection order — not at arrival, so merged
        float histogram sums are reproducible run to run.
        """
        if task_id in self._discarded:
            raise ValueError(f"task {task_id} was discarded")
        while task_id not in self._done:
            self._pump()
        outcome = self._done.pop(task_id)
        if isinstance(outcome, _TaskError):
            raise RuntimeError(f"worker shard failed: {outcome.message}")
        probabilities, snapshot = outcome
        if snapshot is not None and task_id not in self._merged:
            if self.telemetry is not None:
                self.telemetry.metrics.merge_snapshot(snapshot)
        self._merged.discard(task_id)
        return probabilities

    def discard(self, task_id: int) -> None:
        """Drop a submitted shard whose result will never be collected."""
        if task_id in self._done:
            self._done.pop(task_id)
            self._merged.discard(task_id)
            return
        if task_id in self._assigned:
            self._discarded.add(task_id)

    # ------------------------------------------------------------------
    # Batched entry point
    # ------------------------------------------------------------------

    def predict_proba(self, sequences, chunk_size: int = 1024) -> np.ndarray:
        """Probabilities for ``(N, T)`` sequences, sharded across workers.

        Shards are ``chunk_size``-row contiguous slices dispatched
        round-robin and merged in shard order — bit-exact with the
        single-process chunked path (rows are independent).
        """
        sequences = np.asarray(sequences)
        if sequences.ndim != 2:
            raise ValueError(f"expected (N, T) batch, got shape {sequences.shape}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if sequences.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        handles = [
            self.submit_infer(sequences[start:start + chunk_size])
            for start in range(0, sequences.shape[0], chunk_size)
        ]
        return np.concatenate([self.result(handle) for handle in handles])

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut workers down and unlink the shared block.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._finalizer is not None:
            self._finalizer()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Generic forked task map (fold-level parallelism)
# ----------------------------------------------------------------------


def _task_worker_main(task_fn, indices, result_queue) -> None:
    """Run this worker's pre-assigned task indices and ship the results.

    ``task_fn`` and its closure (datasets, configs) are inherited through
    ``fork`` — nothing is pickled on the way in; only the (plain-data)
    results and telemetry snapshots ride back through the queue.  Each task
    runs under a fresh private Telemetry so the parent can fold the
    snapshots deterministically.
    """
    from repro.telemetry import Telemetry

    for index in indices:
        try:
            telemetry = Telemetry()
            result = task_fn(index, telemetry)
            result_queue.put((index, "ok", result, telemetry.metrics.snapshot()))
        except Exception as exc:  # ship the failure, keep serving
            result_queue.put((index, "error", f"{type(exc).__name__}: {exc}", None))


def parallel_map(task_fn, count: int, workers: int = 1, telemetry=None) -> list:
    """Run ``task_fn(index, telemetry)`` for every index, forked when possible.

    The coarse-grained sibling of :class:`WorkerPool`: where the pool
    shards one inference batch into row slices, ``parallel_map`` runs whole
    independent tasks — e.g. one leave-k-out generalization fold each —
    across forked workers.  Tasks are pre-assigned round-robin
    (worker ``w`` gets indices ``w, w+workers, ...``), results must be
    picklable, and determinism follows the same contract as the pool:

    * the returned list is in **index order** regardless of completion
      order (tasks are independent, so each result is bit-identical to the
      serial run's);
    * worker telemetry snapshots fold into ``telemetry`` in index order
      via :meth:`~repro.telemetry.metrics.MetricRegistry.merge_snapshot`,
      so merged counters/histograms equal the ``workers=1`` values;
    * degradation is graceful and counted
      (``repro_parallel_fallback_total{reason=...}``): no ``fork``, a
      start failure, or a worker death mid-run fall back to running the
      affected tasks in-process on the parent's telemetry — construction
      never raises for environmental reasons.

    A task that *raises* (rather than dies) is reported after every other
    task has resolved, as a ``RuntimeError`` naming the lowest failed index.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if count == 0:
        return []

    def count_task(mode: str) -> None:
        if telemetry is not None:
            telemetry.counter("repro_parallel_tasks_total", mode=mode).inc()

    def count_fallback(reason: str) -> None:
        if telemetry is not None:
            telemetry.counter("repro_parallel_fallback_total", reason=reason).inc()

    def run_inprocess(indices, outcomes) -> None:
        for index in indices:
            count_task("inprocess")
            try:
                outcomes[index] = ("ok", task_fn(index, telemetry), None)
            except Exception as exc:  # report after the rest resolve
                outcomes[index] = ("error", f"{type(exc).__name__}: {exc}", None)

    def finish(outcomes) -> list:
        for index, (status, payload, _) in enumerate(outcomes):
            if status == "error":
                raise RuntimeError(f"parallel task {index} failed: {payload}")
        return [payload for _, payload, _ in outcomes]

    outcomes: list = [None] * count
    workers = min(int(workers), count)
    supported, reason = _pool_supported()
    if workers <= 1 or not supported:
        if workers > 1:
            count_fallback(reason)
        run_inprocess(range(count), outcomes)
        return finish(outcomes)

    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    result_queue = ctx.Queue()
    assignments = [list(range(start, count, workers)) for start in range(workers)]
    processes: list = []
    try:
        for start, indices in enumerate(assignments):
            process = ctx.Process(
                target=_task_worker_main,
                args=(task_fn, indices, result_queue),
                daemon=True,
                name=f"repro-task-worker-{start}",
            )
            process.start()
            processes.append(process)
    except OSError:
        for process in processes:
            if process.is_alive():
                process.terminate()
        count_fallback("start_failure")
        run_inprocess(range(count), outcomes)
        return finish(outcomes)

    pending = set(range(count))
    dead_handled: set = set()
    while pending:
        try:
            index, status, payload, snapshot = result_queue.get(
                timeout=_POLL_SECONDS
            )
        except queue_module.Empty:
            for worker_index, process in enumerate(processes):
                if worker_index in dead_handled or process.is_alive():
                    continue
                dead_handled.add(worker_index)
                if telemetry is not None:
                    telemetry.counter("repro_parallel_worker_deaths_total").inc()
                # Drain results the worker flushed before dying, then run
                # only its genuinely missing tasks in-process.
                while True:
                    try:
                        done = result_queue.get_nowait()
                    except queue_module.Empty:
                        break
                    if done[0] in pending:
                        count_task("pool")
                        outcomes[done[0]] = tuple(done[1:])
                        pending.discard(done[0])
                missing = [i for i in assignments[worker_index] if i in pending]
                for i in missing:
                    if telemetry is not None:
                        telemetry.counter("repro_parallel_retries_total").inc()
                    run_inprocess([i], outcomes)
                    pending.discard(i)
            continue
        if index in pending:
            count_task("pool")
            outcomes[index] = (status, payload, snapshot)
            pending.discard(index)

    import time

    deadline = time.monotonic() + _SHUTDOWN_GRACE_SECONDS
    for process in processes:
        process.join(timeout=max(0.01, deadline - time.monotonic()))
    for process in processes:
        if process.is_alive():
            process.terminate()

    if telemetry is not None:
        for status, _, snapshot in outcomes:
            if status == "ok" and snapshot is not None:
                telemetry.metrics.merge_snapshot(snapshot)
    return finish(outcomes)
