"""Deprecated location of the kernel-to-kernel streaming extension.

The streaming ablation model (paper Section III-C) now lives in
:mod:`repro.core.sessions` alongside the streaming-session serving
layer — one module for the engine's whole streaming story.  This shim
re-exports the public names so existing ``repro.core.streaming`` imports
keep working; new code should import from :mod:`repro.core.sessions`
(or the :mod:`repro.core` package root).
"""

from __future__ import annotations

from repro.core.sessions import (
    STREAM_FIFO_LATENCY_CYCLES,
    StreamingReport,
    streaming_report,
)

__all__ = [
    "STREAM_FIFO_LATENCY_CYCLES",
    "StreamingReport",
    "streaming_report",
]
