"""Kernel-to-kernel streaming extension (paper Section III-C).

"Note that streaming can be easily ported to the kernel implementation
for additional acceleration if the FPGA supports it."  In the baseline
design, kernels exchange data through FPGA global memory over AXI masters
(each hand-off pays a DDR write + read).  With AXI4-Stream hand-offs the
producing kernel pushes words directly into the consumer's FIFO: the
hand-off cost drops from two DDR transactions to a FIFO depth, and the
per-CU copy loops disappear (each consumer taps the stream).

This module models that variant on top of the existing kernel timings so
the streaming ablation benchmark can quantify the claim.
"""

from __future__ import annotations

import dataclasses
import math

from repro.core.config import EngineConfig
from repro.core.kernels.base import KernelTiming
from repro.hw.clock import ClockDomain
from repro.hw.dataflow import StageTiming, schedule

#: Cycles for a word to traverse an AXI4-Stream FIFO hand-off.
STREAM_FIFO_LATENCY_CYCLES = 2


def _speedup(baseline_cycles: int, streamed_cycles: int) -> float:
    """``baseline / streamed`` with degenerate denominators made honest.

    A zero streamed-cycle count against a non-zero baseline is an
    *unbounded* speedup — returning 1.0 there (as this once did) would
    silently report "no speedup" for the best possible outcome.  Only
    zero-over-zero, where the comparison is vacuous, reports 1.0.
    """
    if streamed_cycles == 0:
        return math.inf if baseline_cycles > 0 else 1.0
    return baseline_cycles / streamed_cycles


@dataclasses.dataclass(frozen=True)
class StreamingReport:
    """Per-item and per-sequence effect of enabling streaming."""

    baseline_item_cycles: int
    streamed_item_cycles: int
    baseline_sequence_cycles: int
    streamed_sequence_cycles: int
    clock: ClockDomain

    @property
    def item_speedup(self) -> float:
        return _speedup(self.baseline_item_cycles, self.streamed_item_cycles)

    @property
    def sequence_speedup(self) -> float:
        return _speedup(
            self.baseline_sequence_cycles, self.streamed_sequence_cycles
        )

    @property
    def streamed_item_microseconds(self) -> float:
        return self.clock.cycles_to_microseconds(self.streamed_item_cycles)


def _copy_loop_cycles(trip_count: int, ii_optimized: bool) -> int:
    """Latency of a per-CU fan-out copy loop (same model as the kernels)."""
    from repro.hw.hls import HlsLoop, PragmaSet, VANILLA_PRAGMAS

    if ii_optimized:
        pragmas = PragmaSet(pipeline=True, target_ii=1, unroll=4, array_partition=True)
    else:
        pragmas = VANILLA_PRAGMAS
    return HlsLoop(
        name="copy", trip_count=trip_count, iteration_depth=4,
        pragmas=pragmas, unroll_depth_penalty=0,
    ).latency_cycles


def _streamed(timing: KernelTiming, saved_cycles: int) -> KernelTiming:
    """Rewrite one kernel's timing with ``saved_cycles`` removed."""
    fill = max(1, timing.fill_latency_cycles - saved_cycles)
    steady = max(1, timing.steady_ii_cycles - (0 if timing.reports_ii else saved_cycles))
    return KernelTiming(
        kernel=timing.kernel,
        fill_latency_cycles=fill,
        steady_ii_cycles=steady,
        reports_ii=timing.reports_ii,
    )


def streaming_report(engine) -> StreamingReport:
    """Quantify the streaming variant against an engine's baseline.

    Savings model:

    * the producing kernels' per-CU fan-out copy loops disappear — each
      consumer taps the stream (``kernel_preprocess``'s embedding copies,
      ``kernel_hidden_state``'s ``h_t`` copies);
    * downstream kernels become free-running: the per-item AXI-Lite
      re-invocation handshake is replaced by the stream FIFO latency.

    The embedding-table DDR fetch and the first kernel's invocation are
    *not* removed — streaming changes hand-offs, not where the model's
    parameters live.

    Parameters
    ----------
    engine:
        A built :class:`~repro.core.engine.CSDInferenceEngine` (loaded or
        timing-only).
    """
    from repro.hw.hls import KERNEL_INVOKE_CYCLES

    config: EngineConfig = engine.config
    dims = config.dimensions
    clock = engine.device.clock

    preprocess = engine.preprocess.timing()
    gates = engine.gates.timing()
    hidden = engine.hidden_state.timing()

    ii_optimized = config.optimization.uses_ii_pragmas
    handoff_saving = KERNEL_INVOKE_CYCLES - STREAM_FIFO_LATENCY_CYCLES
    preprocess_copy = _copy_loop_cycles(
        dims.embedding_dim * config.num_gate_cus, ii_optimized
    )
    hidden_copy = _copy_loop_cycles(
        dims.hidden_size * config.num_gate_cus, ii_optimized
    )

    streamed_preprocess = _streamed(preprocess, preprocess_copy)
    streamed_gates = _streamed(gates, handoff_saving)
    streamed_hidden = _streamed(hidden, handoff_saving + hidden_copy)

    baseline_stage = StageTiming(
        preprocess=preprocess.reported_cycles,
        gates=gates.reported_cycles,
        hidden_state=hidden.reported_cycles,
    )
    streamed_stage = StageTiming(
        preprocess=streamed_preprocess.reported_cycles,
        gates=streamed_gates.reported_cycles,
        hidden_state=streamed_hidden.reported_cycles,
    )
    items = dims.sequence_length
    return StreamingReport(
        baseline_item_cycles=baseline_stage.serial_total,
        streamed_item_cycles=streamed_stage.serial_total,
        baseline_sequence_cycles=schedule(
            baseline_stage, items, config.preemptive_preprocess
        ),
        streamed_sequence_cycles=schedule(
            streamed_stage, items, config.preemptive_preprocess
        ),
        clock=clock,
    )
