"""Multi-CSD fleet planning (paper Section II).

"the SmartSSD represents a scalable solution ... allowing for the
installation of multiple devices within a single node."  For the
background-scanning deployment that means capacity planning: given a set
of monitored streams (hosts/VMs, each producing API calls at some rate)
and the per-device scanning throughput, how many CSDs does a node need,
how should streams map onto devices, and what happens when a device
fails?

:class:`FleetPlanner` answers those with first-fit-decreasing assignment
over the per-device window budget, plus a failure-rebalance step.
"""

from __future__ import annotations

import dataclasses

from repro.core.throughput import ThroughputReport


@dataclasses.dataclass(frozen=True)
class MonitoredStream:
    """One host/VM whose API-call stream the fleet must scan."""

    name: str
    api_calls_per_second: float
    detection_stride: int = 10

    def __post_init__(self) -> None:
        if self.api_calls_per_second <= 0:
            raise ValueError(f"{self.name}: call rate must be positive")
        if self.detection_stride < 1:
            raise ValueError(f"{self.name}: stride must be >= 1")

    @property
    def windows_per_second(self) -> float:
        return self.api_calls_per_second / self.detection_stride


@dataclasses.dataclass
class DeviceAssignment:
    """Streams placed on one CSD."""

    device_index: int
    capacity_windows_per_second: float
    streams: list = dataclasses.field(default_factory=list)

    @property
    def load_windows_per_second(self) -> float:
        return sum(stream.windows_per_second for stream in self.streams)

    @property
    def utilization(self) -> float:
        return self.load_windows_per_second / self.capacity_windows_per_second

    def fits(self, stream: MonitoredStream, headroom: float) -> bool:
        budget = self.capacity_windows_per_second * headroom
        return self.load_windows_per_second + stream.windows_per_second <= budget


@dataclasses.dataclass(frozen=True)
class FleetPlan:
    """The planner's output."""

    assignments: tuple
    headroom: float

    @property
    def devices_needed(self) -> int:
        return len(self.assignments)

    @property
    def peak_utilization(self) -> float:
        """Highest per-device utilisation (0.0 for an empty fleet)."""
        return max((a.utilization for a in self.assignments), default=0.0)

    def device_of(self, stream_name: str) -> int:
        for assignment in self.assignments:
            if any(s.name == stream_name for s in assignment.streams):
                return assignment.device_index
        raise KeyError(f"stream {stream_name!r} not in plan")


class FleetPlanner:
    """Sizes and balances a node's CSD fleet.

    Parameters
    ----------
    device_report:
        One device's scanning capability (from
        :func:`repro.core.throughput.throughput_report`); only its
        deliverable ``windows_per_second`` is used.
    headroom:
        Fraction of a device's capacity the planner may commit (0.8
        leaves 20% for bursts and model-update downtime).
    """

    def __init__(self, device_report: ThroughputReport, headroom: float = 0.8):
        if not 0.0 < headroom <= 1.0:
            raise ValueError(f"headroom must be in (0, 1], got {headroom}")
        self.capacity = device_report.windows_per_second
        self.headroom = headroom

    def plan(self, streams) -> FleetPlan:
        """First-fit-decreasing placement of streams onto devices.

        Raises
        ------
        ValueError
            If any single stream exceeds one device's usable budget (it
            cannot be split — windows of one process carry a recurrent
            state).
        """
        streams = sorted(streams, key=lambda s: s.windows_per_second, reverse=True)
        budget = self.capacity * self.headroom
        for stream in streams:
            if stream.windows_per_second > budget:
                raise ValueError(
                    f"stream {stream.name!r} needs "
                    f"{stream.windows_per_second:.0f} windows/s but one device "
                    f"provides {budget:.0f}; lower its stride"
                )
        assignments: list = []
        for stream in streams:
            for assignment in assignments:
                if assignment.fits(stream, self.headroom):
                    assignment.streams.append(stream)
                    break
            else:
                assignment = DeviceAssignment(
                    device_index=len(assignments),
                    capacity_windows_per_second=self.capacity,
                )
                assignment.streams.append(stream)
                assignments.append(assignment)
        return FleetPlan(assignments=tuple(assignments), headroom=self.headroom)

    def rebalance_after_failure(self, plan: FleetPlan, failed_device: int) -> FleetPlan:
        """Re-place a failed device's streams across the fleet.

        Survivors keep their existing load (no churn for unaffected
        streams); the orphaned streams go through first-fit again, adding
        devices only if the survivors cannot absorb them.
        """
        survivors = [
            DeviceAssignment(
                device_index=a.device_index,
                capacity_windows_per_second=a.capacity_windows_per_second,
                streams=list(a.streams),
            )
            for a in plan.assignments
            if a.device_index != failed_device
        ]
        orphans = []
        for assignment in plan.assignments:
            if assignment.device_index == failed_device:
                orphans = sorted(
                    assignment.streams, key=lambda s: s.windows_per_second,
                    reverse=True,
                )
        if not orphans and not any(
            a.device_index == failed_device for a in plan.assignments
        ):
            raise KeyError(f"no device {failed_device} in plan")
        next_index = max((a.device_index for a in plan.assignments), default=-1) + 1
        for stream in orphans:
            for assignment in survivors:
                if assignment.fits(stream, self.headroom):
                    assignment.streams.append(stream)
                    break
            else:
                replacement = DeviceAssignment(
                    device_index=next_index,
                    capacity_windows_per_second=self.capacity,
                )
                next_index += 1
                replacement.streams.append(stream)
                survivors.append(replacement)
        return FleetPlan(assignments=tuple(survivors), headroom=self.headroom)
