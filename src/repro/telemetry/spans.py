"""Span-based tracing of kernel-level events on the simulated timeline.

A :class:`Span` is a named ``[start_cycle, end_cycle)`` interval of the
engine's kernel :class:`~repro.hw.clock.ClockDomain` — never host wall
clock — with optional attributes and child spans.  The engine records one
span tree per ``infer_batch`` call laying out the per-item schedule
(``csd.preprocess`` → the gate CUs → ``csd.hidden_state``) plus the
one-time ``csd.fc_head`` epilogue; storage fetches record a separate
``csd.p2p_dma`` root.  The exact tree shape is a documented, tested
contract: see ``docs/observability.md``.

The tracer is intentionally *explicit*: callers pass start/end cycles and
the parent span, because the timing model is analytic — intervals are
known when the span is recorded, so there is nothing to "enter" or
"exit" and no hidden global state.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class Span:
    """One named interval on the simulated cycle timeline."""

    name: str
    start_cycle: float
    end_cycle: float
    attributes: dict = dataclasses.field(default_factory=dict)
    children: list = dataclasses.field(default_factory=list)

    def __post_init__(self) -> None:
        if self.end_cycle < self.start_cycle:
            raise ValueError(
                f"span {self.name!r} ends ({self.end_cycle}) before it "
                f"starts ({self.start_cycle})"
            )

    @property
    def duration_cycles(self) -> float:
        return self.end_cycle - self.start_cycle


class Tracer:
    """Records span trees; one tracer per :class:`~repro.telemetry.Telemetry`."""

    def __init__(self):
        self.roots: list = []

    def record(
        self,
        name: str,
        start_cycle: float,
        end_cycle: float,
        parent: Span | None = None,
        attributes: dict | None = None,
    ) -> Span:
        """Record one span; attach to ``parent`` or as a new root."""
        span = Span(
            name=name,
            start_cycle=start_cycle,
            end_cycle=end_cycle,
            attributes=dict(attributes or {}),
        )
        if parent is None:
            self.roots.append(span)
        else:
            parent.children.append(span)
        return span

    def clear(self) -> None:
        """Drop every recorded span (start of a fresh observation window)."""
        self.roots = []

    def iter_spans(self):
        """Depth-first ``(span, parent)`` pairs over every recorded tree."""
        stack = [(root, None) for root in reversed(self.roots)]
        while stack:
            span, parent = stack.pop()
            yield span, parent
            for child in reversed(span.children):
                stack.append((child, span))

    def render_tree(self, root: Span | None = None, cycles: bool = False) -> str:
        """ASCII tree of span names (optionally with cycle intervals).

        With ``cycles=False`` the rendition contains *names only* — this
        is the exact text ``docs/observability.md`` pins in its
        ``spantree`` block, so keep it stable.
        """
        lines: list = []

        def label(span: Span) -> str:
            if not cycles:
                return span.name
            return f"{span.name} [{span.start_cycle}, {span.end_cycle})"

        def walk(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
            if is_root:
                lines.append(label(span))
                child_prefix = ""
            else:
                lines.append(prefix + ("└─ " if is_last else "├─ ") + label(span))
                child_prefix = prefix + ("   " if is_last else "│  ")
            for index, child in enumerate(span.children):
                walk(child, child_prefix, index == len(span.children) - 1, False)

        for top in [root] if root is not None else self.roots:
            walk(top, "", True, True)
        return "\n".join(lines)
