"""Counters, gauges, and fixed-bucket latency histograms.

The instruments here are deliberately **wall-clock free**: every value
observed is a simulated quantity — kernel-clock cycles of the engine's
:class:`~repro.hw.clock.ClockDomain`, modeled transfer seconds, byte or
sequence counts — so two identical runs produce byte-identical telemetry.
That determinism is what lets the docs-as-contract test pin the exported
schema exactly (see ``docs/observability.md``).

Histograms use fixed, explicit bucket upper bounds (Prometheus ``le``
semantics: an observation lands in the first bucket whose bound is
``>= value``, with an implicit ``+Inf`` overflow bucket) and support
exact :meth:`Histogram.merge` so per-shard histograms can be combined
without loss — the property the ROADMAP's sharding/fleet work needs.
"""

from __future__ import annotations

import bisect

#: Default bounds for ``*_cycles`` histograms: 1 cycle .. ~1M cycles in
#: powers of two.  Covers one-cycle fixed-point gate initiations up to
#: whole-sequence latencies at every optimisation level.
DEFAULT_CYCLE_BUCKETS = tuple(2 ** exponent for exponent in range(21))

#: Default bounds for ``*_seconds`` histograms (modeled device seconds,
#: never host wall clock): 100 ns .. 10 s in decades.
DEFAULT_SECONDS_BUCKETS = tuple(10.0 ** exponent for exponent in range(-7, 2))

#: Default bounds for everything else (sizes, counts): 1 .. 65,536.
DEFAULT_SIZE_BUCKETS = tuple(2 ** exponent for exponent in range(17))


def _check_labels(labels: dict) -> dict:
    for key, value in labels.items():
        if not isinstance(key, str) or not key:
            raise ValueError(f"label names must be non-empty strings, got {key!r}")
        if not isinstance(value, (str, int, float, bool)):
            raise ValueError(f"label {key!r} has unsupported value {value!r}")
    return dict(labels)


class Counter:
    """A monotonically non-decreasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = _check_labels(labels)
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only increase; got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (occupancy, utilisation)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = _check_labels(labels)
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def add(self, delta: int | float) -> None:
        self.value += delta


class Histogram:
    """A fixed-bucket distribution with exact merge.

    Parameters
    ----------
    name / labels:
        Identity within a :class:`MetricRegistry`.
    buckets:
        Strictly increasing upper bounds (``le``).  Observations above
        the last bound land in the implicit ``+Inf`` bucket.
    """

    __slots__ = ("name", "labels", "bucket_bounds", "bucket_counts", "count", "sum")

    def __init__(self, name: str, labels: dict, buckets):
        bounds = tuple(buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase, got {bounds}")
        self.name = name
        self.labels = _check_labels(labels)
        self.bucket_bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self.count = 0
        self.sum = 0

    def observe(self, value: int | float, count: int = 1) -> None:
        """Record ``value``; ``count`` folds repeated identical observations.

        The ``count`` shortcut keeps batched instrumentation cheap: a
        64-sequence batch whose sequences share one simulated latency is
        one ``observe(latency, count=64)``, not 64 Python calls.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        index = bisect.bisect_left(self.bucket_bounds, value)
        self.bucket_counts[index] += count
        self.count += count
        self.sum += value * count

    def cumulative_buckets(self) -> list:
        """``(le, cumulative_count)`` pairs, ending with ``("+Inf", count)``."""
        pairs = []
        running = 0
        for bound, bucket_count in zip(self.bucket_bounds, self.bucket_counts):
            running += bucket_count
            pairs.append((bound, running))
        pairs.append(("+Inf", self.count))
        return pairs

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram (exact).

        Both histograms must share identical bucket bounds; merging is
        element-wise addition, so ``merge`` is associative and
        commutative — shard-order independent.
        """
        if other.bucket_bounds != self.bucket_bounds:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.bucket_bounds} vs {other.bucket_bounds}"
            )
        for index, bucket_count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket_count
        self.count += other.count
        self.sum += other.sum


def default_buckets_for(name: str):
    """Bucket bounds implied by a metric name's unit suffix."""
    if name.endswith("_cycles"):
        return DEFAULT_CYCLE_BUCKETS
    if name.endswith("_seconds"):
        return DEFAULT_SECONDS_BUCKETS
    return DEFAULT_SIZE_BUCKETS


class MetricRegistry:
    """Get-or-create store for all instruments of one telemetry session.

    Instruments are keyed by ``(name, sorted labels)``; asking twice with
    the same identity returns the same object, so instrumented components
    never need to coordinate.
    """

    def __init__(self):
        self._metrics: dict = {}

    @staticmethod
    def _key(name: str, labels: dict) -> tuple:
        return (name, tuple(sorted(labels.items())))

    def _get_or_create(self, kind, name, labels, factory):
        key = self._key(name, labels)
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"metric {name!r}{labels} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        metric = factory()
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels, lambda: Counter(name, labels))

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels, lambda: Gauge(name, labels))

    def histogram(self, name: str, buckets=None, **labels) -> Histogram:
        bounds = tuple(buckets) if buckets is not None else default_buckets_for(name)
        return self._get_or_create(
            Histogram, name, labels, lambda: Histogram(name, labels, bounds)
        )

    def __len__(self) -> int:
        return len(self._metrics)

    def all_metrics(self) -> list:
        """Every instrument, sorted by (name, labels) for determinism."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def merge_snapshot(self, records) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        The cross-process counterpart of :meth:`Histogram.merge`: worker
        processes return plain-data snapshots, and the parent folds them
        in exactly — counters add, gauges take the incoming value,
        histograms merge bucket-wise (identical bounds required).  Merging
        is associative and commutative for counters and histograms, so
        shard results can be folded in any order without loss.
        """
        for record in records:
            labels = dict(record.get("labels") or {})
            kind = record["type"]
            if kind == "counter":
                self.counter(record["name"], **labels).inc(record["value"])
            elif kind == "gauge":
                self.gauge(record["name"], **labels).set(record["value"])
            elif kind == "histogram":
                bounds = tuple(le for le, _ in record["buckets"][:-1])
                histogram = self.histogram(record["name"], buckets=bounds, **labels)
                if histogram.bucket_bounds != bounds:
                    raise ValueError(
                        f"cannot merge snapshot histogram {record['name']!r} "
                        f"with different buckets: {histogram.bucket_bounds} "
                        f"vs {bounds}"
                    )
                previous = 0
                for index, (_, cumulative) in enumerate(record["buckets"]):
                    histogram.bucket_counts[index] += cumulative - previous
                    previous = cumulative
                histogram.count += record["count"]
                histogram.sum += record["sum"]
            else:
                raise ValueError(f"unknown snapshot record type {kind!r}")

    def snapshot(self) -> list:
        """Plain-data view of every instrument (the export surface)."""
        records = []
        for metric in self.all_metrics():
            if isinstance(metric, Counter):
                records.append(
                    {"type": "counter", "name": metric.name,
                     "labels": dict(metric.labels), "value": metric.value}
                )
            elif isinstance(metric, Gauge):
                records.append(
                    {"type": "gauge", "name": metric.name,
                     "labels": dict(metric.labels), "value": metric.value}
                )
            else:
                records.append(
                    {"type": "histogram", "name": metric.name,
                     "labels": dict(metric.labels),
                     "buckets": [[le, count] for le, count in metric.cumulative_buckets()],
                     "sum": metric.sum, "count": metric.count}
                )
        return records
