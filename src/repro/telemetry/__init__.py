"""Structured telemetry for the CSD inference pipeline.

The observability layer the scaling ROADMAP items (sharding, fleet
scheduling, async serving) build on: counters, gauges and fixed-bucket
histograms (:mod:`repro.telemetry.metrics`), a span tracer keyed to the
simulated kernel clock (:mod:`repro.telemetry.spans`), and pluggable
exporters (:mod:`repro.telemetry.exporters`).  The metric names, label
sets, units, and the ``infer_batch`` span tree are a **documented
contract** — ``docs/observability.md`` — enforced by
``tests/integration/test_observability_contract.py``.

Telemetry is opt-in and observation-only: components hold a ``telemetry``
reference that defaults to ``None`` and guard every hook with one ``is
None`` check, so the disabled path costs a pointer test and nothing
escapes into the numerics (batch parity stays bit-exact either way).

Usage::

    from repro import OptimizationLevel, engine_at_level
    from repro.telemetry import JsonLinesExporter, Telemetry

    telemetry = Telemetry(exporters=[JsonLinesExporter("telemetry.jsonl")])
    engine = engine_at_level(model, OptimizationLevel.FIXED_POINT)
    engine.attach_telemetry(telemetry)
    engine.infer_batch(sequences)
    telemetry.close()        # export every metric + span, close files

From the CLI: ``python -m repro --telemetry telemetry.jsonl evaluate …``.
"""

from __future__ import annotations

from repro.telemetry.exporters import (
    InMemoryExporter,
    JsonLinesExporter,
    PrometheusFileExporter,
    SCHEMA,
    metric_events,
    render_prometheus,
    span_events,
)
from repro.telemetry.metrics import (
    Counter,
    DEFAULT_CYCLE_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Gauge,
    Histogram,
    MetricRegistry,
)
from repro.telemetry.spans import Span, Tracer


class Telemetry:
    """One telemetry session: a metric registry, a tracer, exporters.

    Parameters
    ----------
    exporters:
        Iterable of exporter objects (``export(events)`` + ``close()``;
        optionally ``emit(event)`` for streaming single events).
    """

    def __init__(self, exporters=()):
        self.metrics = MetricRegistry()
        self.tracer = Tracer()
        self.exporters = list(exporters)
        self._closed = False

    # -- instrument conveniences ---------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, buckets=None, **labels) -> Histogram:
        return self.metrics.histogram(name, buckets=buckets, **labels)

    def record_span(self, name, start_cycle, end_cycle, parent=None, attributes=None) -> Span:
        return self.tracer.record(name, start_cycle, end_cycle, parent, attributes)

    # -- export lifecycle ----------------------------------------------

    def events(self) -> list:
        """The full, schema-stamped event stream (metrics then spans)."""
        return metric_events(self.metrics) + span_events(self.tracer)

    def emit(self, event: dict) -> None:
        """Stream one extra event to every exporter that supports it."""
        stamped = {"schema": SCHEMA}
        stamped.update(event)
        for exporter in self.exporters:
            emit = getattr(exporter, "emit", None)
            if emit is not None:
                emit(stamped)

    def export(self) -> list:
        """Push the current event stream to every exporter; returns it."""
        events = self.events()
        for exporter in self.exporters:
            exporter.export(events)
        return events

    def close(self) -> None:
        """Export once, then close every exporter.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self.export()
        for exporter in self.exporters:
            exporter.close()


__all__ = [
    "Counter",
    "DEFAULT_CYCLE_BUCKETS",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "Histogram",
    "InMemoryExporter",
    "JsonLinesExporter",
    "MetricRegistry",
    "PrometheusFileExporter",
    "SCHEMA",
    "Span",
    "Telemetry",
    "Tracer",
    "metric_events",
    "render_prometheus",
    "span_events",
]
