"""Pluggable exporters for the telemetry event schema.

Three renditions of the same data, all produced from the identical event
stream (``schema`` field ``repro.telemetry/v1``; see
``docs/observability.md`` for the field-by-field contract):

* :class:`JsonLinesExporter` — one JSON object per line, the format the
  CLI's ``--telemetry <path>`` flag and the benchmark harness write;
* :class:`InMemoryExporter` — collects event dicts for tests;
* :class:`PrometheusFileExporter` / :func:`render_prometheus` — the
  Prometheus text exposition format for the metric events.

Exporters receive *events* (plain dicts), not live instruments, so an
exporter can never perturb the measurement.
"""

from __future__ import annotations

import json

from repro.telemetry.metrics import MetricRegistry
from repro.telemetry.spans import Tracer

#: Version tag stamped on every exported event.
SCHEMA = "repro.telemetry/v1"


def metric_events(registry: MetricRegistry) -> list:
    """Every instrument as one schema-stamped event dict."""
    events = []
    for record in registry.snapshot():
        event = {"schema": SCHEMA}
        event.update(record)
        events.append(event)
    return events


def span_events(tracer: Tracer) -> list:
    """Every span, depth-first, with integer ``span_id``/``parent_id``."""
    ids: dict = {}
    events = []
    for span, parent in tracer.iter_spans():
        span_id = len(ids)
        ids[id(span)] = span_id
        events.append(
            {
                "schema": SCHEMA,
                "type": "span",
                "name": span.name,
                "span_id": span_id,
                "parent_id": None if parent is None else ids[id(parent)],
                "start_cycle": span.start_cycle,
                "end_cycle": span.end_cycle,
                "attributes": dict(span.attributes),
            }
        )
    return events


class InMemoryExporter:
    """Collects events in a list — the test seam."""

    def __init__(self):
        self.events: list = []
        self.closed = False

    def emit(self, event: dict) -> None:
        self.events.append(dict(event))

    def export(self, events) -> None:
        for event in events:
            self.emit(event)

    def close(self) -> None:
        self.closed = True

    def by_type(self, event_type: str) -> list:
        return [e for e in self.events if e.get("type") == event_type]


class JsonLinesExporter:
    """Appends one JSON object per line to ``path``.

    ``sort_keys=True`` keeps the output byte-stable across runs so
    telemetry files diff cleanly.
    """

    def __init__(self, path):
        self.path = path
        self._file = open(path, "w", encoding="utf-8")

    def emit(self, event: dict) -> None:
        json.dump(event, self._file, sort_keys=True)
        self._file.write("\n")
        self._file.flush()

    def export(self, events) -> None:
        for event in events:
            self.emit(event)

    def close(self) -> None:
        self._file.close()


def _render_labels(labels: dict, extra: tuple | None = None) -> str:
    pairs = sorted(labels.items())
    if extra is not None:
        pairs = pairs + [extra]
    if not pairs:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in pairs)
    return "{" + body + "}"


def render_prometheus(events) -> str:
    """Prometheus text exposition of the metric events in ``events``.

    Span and bench-report events are skipped (Prometheus has no span
    type); histograms render cumulative ``_bucket`` series plus ``_sum``
    and ``_count``, per the exposition format.
    """
    lines: list = []
    typed = [e for e in events if e.get("type") in ("counter", "gauge", "histogram")]
    seen_type: set = set()
    for event in sorted(typed, key=lambda e: (e["name"], sorted(e["labels"].items()))):
        name, labels = event["name"], event["labels"]
        if name not in seen_type:
            seen_type.add(name)
            lines.append(f"# TYPE {name} {event['type']}")
        if event["type"] in ("counter", "gauge"):
            lines.append(f"{name}{_render_labels(labels)} {event['value']}")
        else:
            for le, count in event["buckets"]:
                lines.append(
                    f"{name}_bucket{_render_labels(labels, ('le', le))} {count}"
                )
            lines.append(f"{name}_sum{_render_labels(labels)} {event['sum']}")
            lines.append(f"{name}_count{_render_labels(labels)} {event['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


class PrometheusFileExporter:
    """Writes the Prometheus text rendition to ``path`` on each export."""

    def __init__(self, path):
        self.path = path

    def export(self, events) -> None:
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(render_prometheus(events))

    def close(self) -> None:
        pass
