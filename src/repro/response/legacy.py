"""The retired mitigation surface, reimplemented on the response subsystem.

``repro.ransomware.mitigation`` grew into :mod:`repro.response`: the
quarantine-on-confirmed-verdict behaviour is now one rung of the
graduated escalation ladder, and every quarantine leaves a hash-chained
audit trail.  This module keeps the old names working with their exact
historical semantics:

* :class:`ProtectedStorage` — per-process write admission in front of an
  :class:`~repro.hw.ssd.NvmeSsd` (the modern equivalent is the
  per-stream ``allow``/``cow``/``block`` modes on
  :class:`~repro.hw.smartssd.SmartSSD`);
* :class:`MitigationEngine` — a quarantine-only
  :class:`~repro.response.policy.ResponsePolicy` driven through a
  :class:`~repro.response.policy.ResponseEngine`, preserving the
  original ``handle_verdict``/``events``/``summary`` contract bit for
  bit;
* :class:`QuarantineEvent` / :data:`WriteBlocked` — the old record and
  exception types (``WriteBlocked`` is now an alias of
  :class:`~repro.hw.smartssd.WriteRefused`).

New code should use :class:`~repro.response.policy.ResponseEngine`
directly.
"""

from __future__ import annotations

import dataclasses

from repro.hw.smartssd import WriteRefused
from repro.hw.ssd import NvmeSsd
from repro.response.audit import AuditLog
from repro.response.policy import (
    ACTION_QUARANTINE,
    ResponseEngine,
    ResponsePolicy,
)

#: Legacy alias — the exception :meth:`ProtectedStorage.write` raises.
WriteBlocked = WriteRefused


@dataclasses.dataclass(frozen=True)
class QuarantineEvent:
    """Record of a process being quarantined."""

    process_id: int
    window_index: int
    probability: float


class ProtectedStorage:
    """Per-process write admission in front of an NVMe SSD model.

    Parameters
    ----------
    ssd:
        The underlying drive.
    """

    def __init__(self, ssd: NvmeSsd):
        self.ssd = ssd
        self._quarantined: set = set()
        self.blocked_writes = 0
        self.blocked_bytes = 0
        self.allowed_writes = 0

    @property
    def quarantined_processes(self) -> frozenset:
        return frozenset(self._quarantined)

    def quarantine(self, process_id: int) -> None:
        """Refuse all further writes from ``process_id``."""
        self._quarantined.add(process_id)

    def release(self, process_id: int) -> None:
        """Lift a quarantine (operator action after triage)."""
        self._quarantined.discard(process_id)

    def write(self, process_id: int, key: str, num_bytes: int) -> float:
        """Admit or refuse one write; returns the simulated write seconds.

        Raises
        ------
        WriteBlocked
            If the process is quarantined.  The write never reaches the
            drive — this is the "immediately thwart any subsequent
            encryption" behaviour.
        """
        if process_id in self._quarantined:
            self.blocked_writes += 1
            self.blocked_bytes += num_bytes
            raise WriteBlocked(
                f"process {process_id} is quarantined; write of {num_bytes} "
                f"bytes to {key!r} refused"
            )
        self.allowed_writes += 1
        return self.ssd.write_object(key, num_bytes)


class _QuarantineOnlyEnforcer:
    """Bridges the escalation ladder onto :class:`ProtectedStorage`."""

    def __init__(self, storage: ProtectedStorage):
        self.storage = storage

    def quarantine(self, process_id) -> None:
        self.storage.quarantine(process_id)


class MitigationEngine:
    """Turns detector verdicts into storage quarantine.

    Parameters
    ----------
    storage:
        The protected storage front end.
    quarantine_threshold:
        Verdict probability required to count toward quarantine; defaults
        to acting on any positive verdict (the detector already
        thresholds).
    confirmations:
        Number of *consecutive* qualifying verdicts required before the
        process is quarantined.  1 (the default) quarantines on the first
        alarm; higher values trade a few windows of reaction time for
        robustness against isolated borderline windows — ransomware's
        encryption phase produces long runs of positives, benign blips do
        not.
    audit:
        Optional :class:`~repro.response.audit.AuditLog` to chain
        transitions into (a fresh one by default; the historical surface
        did not expose this).
    """

    def __init__(
        self,
        storage: ProtectedStorage,
        quarantine_threshold: float = 0.0,
        confirmations: int = 1,
        audit: AuditLog | None = None,
    ):
        if not 0.0 <= quarantine_threshold < 1.0:
            raise ValueError(
                f"quarantine_threshold must be in [0, 1), got {quarantine_threshold}"
            )
        if confirmations < 1:
            raise ValueError(f"confirmations must be >= 1, got {confirmations}")
        self.storage = storage
        self.quarantine_threshold = quarantine_threshold
        self.confirmations = confirmations
        self.events: list = []
        self.responder = ResponseEngine(
            policy=ResponsePolicy(
                observe_threshold=quarantine_threshold,
                write_block_threshold=None,
                quarantine_threshold=quarantine_threshold,
                kill_threshold=None,
                confirmations=confirmations,
                attribute=False,
            ),
            enforcer=_QuarantineOnlyEnforcer(storage),
            audit=audit,
        )

    @property
    def audit(self) -> AuditLog:
        """The hash-chained audit log behind this engine (new surface)."""
        return self.responder.audit

    def handle_verdict(self, process_id: int, verdict) -> bool:
        """Apply one verdict; returns True if the process is quarantined.

        Negative (or below-threshold) verdicts reset the process's
        confirmation streak.
        """
        qualifying = (
            verdict.is_ransomware
            and verdict.probability >= self.quarantine_threshold
        )
        decision = self.responder.on_verdict(process_id, verdict)
        if decision.escalated and decision.action == ACTION_QUARANTINE:
            self.events.append(
                QuarantineEvent(
                    process_id=process_id,
                    window_index=verdict.window_index,
                    probability=verdict.probability,
                )
            )
        if not qualifying:
            return process_id in self.storage.quarantined_processes
        return self.responder.streak_of(process_id) >= self.confirmations

    def summary(self) -> dict:
        """Mitigation statistics for reporting."""
        return {
            "quarantined_processes": len(self.storage.quarantined_processes),
            "quarantine_events": len(self.events),
            "blocked_writes": self.storage.blocked_writes,
            "blocked_bytes": self.storage.blocked_bytes,
            "allowed_writes": self.storage.allowed_writes,
        }
