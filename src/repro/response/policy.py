"""The response policy engine: verdict confidence → graduated actions.

:class:`ResponsePolicy` is the declarative part — thresholds per
escalation rung, a consecutive-confirmation requirement, and explicit
opt-in flags for the destructive rungs.  :class:`ResponseEngine` is the
per-stream state machine that applies it: verdicts arrive, streaks
accumulate, and actions escalate monotonically along

    observe → write_block → quarantine_stream → kill → restore_snapshot

with every transition appended to the hash-chained
:class:`~repro.response.audit.AuditLog` and (optionally) attributed back
to the window tokens that caused it via
:func:`~repro.response.attribution.attribute_window`.

Enforcement is pluggable: the engine calls optional hook methods
(``observe``/``write_block``/``quarantine``/``kill``/``restore``) on an
*enforcer* object.  :class:`SmartSsdEnforcer` maps them onto the
self-protecting :class:`~repro.hw.smartssd.SmartSSD` write path;
:class:`FleetResponder` bridges a whole
:class:`~repro.core.serving.FleetServer` (quarantine the stream at the
fleet, snapshot the backing volume on the owning drive).

Everything here is deterministic: no wall clock, no randomness — the
audit log of a replay is bit-identical run to run, and per-stream chains
are invariant under mid-run drive failures (the serving layer guarantees
failure-invariant per-stream verdict sequences; this layer adds nothing
time-dependent on top).
"""

from __future__ import annotations

import collections
import dataclasses

from repro.response.attribution import attribute_window
from repro.response.audit import AuditLog

ACTION_OBSERVE = "observe"
ACTION_WRITE_BLOCK = "write_block"
ACTION_QUARANTINE = "quarantine_stream"
ACTION_KILL = "kill"
ACTION_RESTORE = "restore_snapshot"

#: The graduated ladder, least to most severe.
ESCALATION_LADDER = (
    ACTION_OBSERVE,
    ACTION_WRITE_BLOCK,
    ACTION_QUARANTINE,
    ACTION_KILL,
    ACTION_RESTORE,
)

_RANK = {action: rank for rank, action in enumerate(ESCALATION_LADDER)}

#: enforcer hook name per enforcing rung.
_ENFORCER_HOOKS = {
    ACTION_WRITE_BLOCK: "write_block",
    ACTION_QUARANTINE: "quarantine",
    ACTION_KILL: "kill",
}


def _check_threshold(name: str, value) -> None:
    if value is not None and not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1] or None, got {value}")


@dataclasses.dataclass(frozen=True)
class ResponsePolicy:
    """Declarative mapping from verdict confidence to the ladder.

    Parameters
    ----------
    observe_threshold:
        Probability a positive verdict needs to *qualify* (count toward
        the confirmation streak and arm copy-on-write protection).
        Verdicts below it reset the streak.
    write_block_threshold / quarantine_threshold / kill_threshold:
        Once a stream's streak reaches ``confirmations``, it escalates to
        the most severe rung whose threshold its probability clears.
        ``None`` disables a rung entirely.
    confirmations:
        Consecutive qualifying verdicts required before any enforcement;
        1 enforces on the first alarm.
    allow_kill / allow_restore:
        The destructive rungs must be opted into explicitly.  A warranted
        but disallowed escalation is capped at quarantine and recorded in
        the audit log as a ``gated`` event — the operator sees what the
        policy *would* have done.  ``allow_restore`` additionally rolls
        the protected volume back to its snapshot when a stream is
        killed.
    attribute:
        Compute occlusion attribution at enforcement escalations (needs
        the engine and the stream's token window; see
        :meth:`ResponseEngine.observe_token`).
    attribution_top_k / attribution_baseline_token:
        How many culpable tokens each escalation records, and the
        occlusion baseline token.
    """

    observe_threshold: float = 0.0
    write_block_threshold: float | None = 0.5
    quarantine_threshold: float | None = 0.8
    kill_threshold: float | None = 0.95
    confirmations: int = 2
    allow_kill: bool = False
    allow_restore: bool = False
    attribute: bool = True
    attribution_top_k: int = 3
    attribution_baseline_token: int = 0

    def __post_init__(self) -> None:
        _check_threshold("observe_threshold", self.observe_threshold)
        _check_threshold("write_block_threshold", self.write_block_threshold)
        _check_threshold("quarantine_threshold", self.quarantine_threshold)
        _check_threshold("kill_threshold", self.kill_threshold)
        if self.observe_threshold is None:
            raise ValueError("observe_threshold cannot be None")
        if self.confirmations < 1:
            raise ValueError(f"confirmations must be >= 1, got {self.confirmations}")
        if self.attribution_top_k < 0:
            raise ValueError("attribution_top_k must be >= 0")

    def target_action(self, probability: float) -> str:
        """The most severe rung ``probability`` clears (ungated)."""
        target = ACTION_OBSERVE
        for threshold, action in (
            (self.write_block_threshold, ACTION_WRITE_BLOCK),
            (self.quarantine_threshold, ACTION_QUARANTINE),
            (self.kill_threshold, ACTION_KILL),
        ):
            if threshold is not None and probability >= threshold:
                target = action
        return target


@dataclasses.dataclass(frozen=True)
class ResponseDecision:
    """What one verdict did to one stream."""

    stream: str
    window_index: int
    probability: float
    action_before: str
    action: str
    escalated: bool
    gated: tuple = ()           # rungs the policy flags refused
    attribution: object = None  # WindowAttribution | None
    restore: object = None      # hw RestoreResult | None


class _StreamState:
    __slots__ = ("streak", "action", "alerted", "gated", "tokens")

    def __init__(self, window_length):
        self.streak = 0
        self.action = ACTION_OBSERVE
        self.alerted = False
        self.gated: set = set()
        self.tokens = (
            None if window_length is None
            else collections.deque(maxlen=window_length)
        )


class ResponseEngine:
    """Per-stream response state machine over a shared policy.

    Parameters
    ----------
    policy:
        The :class:`ResponsePolicy`; defaults are conservative
        (destructive rungs gated off).
    enforcer:
        Optional object with any of the hook methods ``observe`` (first
        qualifying verdict — arm cheap protection), ``write_block``,
        ``quarantine``, ``kill`` (escalations), ``restore`` (roll the
        volume back; must return the restore accounting or ``None``).
        Missing hooks are skipped — the state machine and audit log run
        regardless.
    engine:
        Optional :class:`~repro.core.engine.CSDInferenceEngine` for
        occlusion attribution; its sequence length sets the token-window
        size :meth:`observe_token` maintains.
    audit:
        The :class:`~repro.response.audit.AuditLog` transitions append
        to; a fresh one by default.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; observation-only
        (``repro_resp_*`` metrics and the ``response.act`` span — see
        ``docs/observability.md``).
    window_length:
        Token-window size when no ``engine`` is given.
    """

    def __init__(self, policy: ResponsePolicy | None = None, enforcer=None,
                 engine=None, audit: AuditLog | None = None, telemetry=None,
                 window_length: int | None = None):
        self.policy = policy or ResponsePolicy()
        self.enforcer = enforcer
        self.engine = engine
        self.audit = audit if audit is not None else AuditLog()
        self.telemetry = telemetry
        if engine is not None and window_length is None:
            window_length = engine.config.dimensions.sequence_length
        self.window_length = window_length
        self._streams: dict = {}

    # -- bookkeeping ----------------------------------------------------

    def _state(self, stream) -> _StreamState:
        state = self._streams.get(stream)
        if state is None:
            state = self._streams[stream] = _StreamState(self.window_length)
        return state

    def action_of(self, stream) -> str:
        """The stream's current rung (``observe`` when never seen)."""
        state = self._streams.get(stream)
        return ACTION_OBSERVE if state is None else state.action

    def streak_of(self, stream) -> int:
        """The stream's current consecutive-confirmation streak."""
        state = self._streams.get(stream)
        return 0 if state is None else state.streak

    @property
    def streams(self) -> tuple:
        return tuple(self._streams)

    def observe_token(self, stream, token) -> None:
        """Record one stream token for later attribution.

        Feed this *before* the verdict for the same token, so the window
        buffer holds exactly the firing window when :meth:`on_verdict`
        attributes it.
        """
        state = self._state(stream)
        if state.tokens is not None:
            state.tokens.append(int(token))

    # -- telemetry ------------------------------------------------------

    def _count(self, name: str, amount: int = 1, **labels) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(name, **labels).inc(amount)

    def _audit(self, stream, at: int, event: str, action: str,
               details: dict) -> None:
        self.audit.append(stream, at, event, action, details)
        self._count("repro_resp_audit_records_total")

    def _emit_escalation(self, stream, verdict, action: str) -> None:
        if self.telemetry is None:
            return
        self.telemetry.metrics.counter(
            "repro_resp_actions_total", action=action
        ).inc()
        self.telemetry.gauge("repro_resp_quarantined_streams").set(
            sum(
                1 for state in self._streams.values()
                if _RANK[state.action] >= _RANK[ACTION_QUARANTINE]
            )
        )
        self.telemetry.tracer.record(
            "response.act", verdict.window_index, verdict.window_index + 1,
            attributes={
                "stream": str(stream), "action": action,
                "probability": verdict.probability, "unit": "window",
            },
        )

    # -- the state machine ----------------------------------------------

    def on_verdict(self, stream, verdict) -> ResponseDecision:
        """Apply one verdict (needs ``probability``/``is_ransomware``/
        ``window_index`` attributes) to the stream's state machine."""
        policy = self.policy
        state = self._state(stream)
        before = state.action
        probability = float(verdict.probability)
        window_index = int(verdict.window_index)

        def decision(escalated=False, gated=(), attribution=None, restore=None):
            return ResponseDecision(
                stream=str(stream), window_index=window_index,
                probability=probability, action_before=before,
                action=state.action, escalated=escalated, gated=gated,
                attribution=attribution, restore=restore,
            )

        if state.action in (ACTION_KILL, ACTION_RESTORE):
            return decision()
        qualifying = (
            bool(verdict.is_ransomware)
            and probability >= policy.observe_threshold
        )
        if not qualifying:
            state.streak = 0
            return decision()
        state.streak += 1
        if not state.alerted:
            state.alerted = True
            self._call_enforcer("observe", stream)
            self._audit(stream, window_index, "alert", ACTION_OBSERVE,
                        {"probability": probability})
        if state.streak < policy.confirmations:
            return decision()

        target = policy.target_action(probability)
        gated: list = []
        if target == ACTION_KILL and not policy.allow_kill:
            if ACTION_KILL not in state.gated:
                state.gated.add(ACTION_KILL)
                gated.append(ACTION_KILL)
                self._audit(stream, window_index, "gated", ACTION_KILL,
                            {"probability": probability})
                self._count("repro_resp_gated_total", action=ACTION_KILL)
            target = ACTION_QUARANTINE if policy.quarantine_threshold is not None \
                else ACTION_WRITE_BLOCK
        if _RANK[target] <= _RANK[state.action]:
            return decision(gated=tuple(gated))

        applied = [
            action for action in ESCALATION_LADDER
            if _RANK[state.action] < _RANK[action] <= _RANK[target]
        ]
        for action in applied:
            hook = _ENFORCER_HOOKS.get(action)
            if hook is not None:
                self._call_enforcer(hook, stream)
        state.action = target
        attribution = self._attribute(state, window_index)
        details: dict = {
            "probability": probability,
            "streak": state.streak,
            "applied": applied,
        }
        if attribution is not None:
            details["attribution"] = attribution.as_dict(
                policy.attribution_top_k
            )
        self._audit(stream, window_index, "escalate", target, details)
        self._emit_escalation(stream, verdict, target)

        restore = None
        if target == ACTION_KILL and policy.allow_restore:
            restore = self._restore(stream, window_index)
        return decision(
            escalated=True, gated=tuple(gated),
            attribution=attribution, restore=restore,
        )

    def restore(self, stream, at: int = 0):
        """Operator-initiated restore (gated by ``allow_restore``)."""
        if not self.policy.allow_restore:
            raise PermissionError(
                "restore_snapshot is gated off (ResponsePolicy.allow_restore)"
            )
        return self._restore(stream, at)

    def _restore(self, stream, at: int):
        restore = self._call_enforcer("restore", stream)
        state = self._state(stream)
        state.action = ACTION_RESTORE
        details: dict = {}
        if restore is not None:
            details = {
                "restored_objects": restore.restored_objects,
                "restored_bytes": restore.restored_bytes,
                "deleted_objects": restore.deleted_objects,
            }
        self._audit(stream, at, "restore", ACTION_RESTORE, details)
        self._count("repro_resp_actions_total", action=ACTION_RESTORE)
        return restore

    def _call_enforcer(self, hook: str, stream):
        enforcer = self.enforcer
        if enforcer is None:
            return None
        method = getattr(enforcer, hook, None)
        if method is None:
            return None
        return method(stream)

    def _attribute(self, state: _StreamState, window_index: int):
        policy = self.policy
        if not policy.attribute or self.engine is None:
            return None
        tokens = state.tokens
        if tokens is None or self.window_length is None:
            return None
        if len(tokens) != self.window_length:
            return None
        attribution = attribute_window(
            self.engine, tuple(tokens), window_index=window_index,
            baseline_token=policy.attribution_baseline_token,
        )
        self._count("repro_resp_attributions_total")
        return attribution

    def summary(self) -> dict:
        """Response statistics for reporting."""
        actions = {action: 0 for action in ESCALATION_LADDER}
        for state in self._streams.values():
            actions[state.action] += 1
        return {
            "streams": len(self._streams),
            "actions": actions,
            "audit_records": len(self.audit),
            "audit_head": self.audit.head_hash,
        }


class SmartSsdEnforcer:
    """Maps policy escalations onto one SmartSSD's protected write path.

    ``observe`` arms copy-on-write preservation for the stream (cheap
    insurance: everything a suspicious stream overwrites is preserved
    into the volume snapshot before the damage lands); ``write_block``
    and above refuse the stream's writes at the drive; ``restore`` rolls
    the volume back to its snapshot.
    """

    def __init__(self, storage):
        self.storage = storage

    def observe(self, stream) -> None:
        from repro.hw.smartssd import MODE_BLOCK, MODE_COW

        if self.storage.stream_mode(stream) != MODE_BLOCK:
            self.storage.set_stream_mode(stream, MODE_COW)

    def write_block(self, stream) -> None:
        from repro.hw.smartssd import MODE_BLOCK

        self.storage.set_stream_mode(stream, MODE_BLOCK)

    quarantine = write_block
    kill = write_block

    def restore(self, stream):
        if self.storage.active_snapshot_id is None:
            return None
        return self.storage.restore_volume()


class FleetResponder:
    """Fleet-level verdict → action bridge for :class:`FleetServer`.

    Pass an instance as ``FleetServer(on_verdict=...)`` (or
    ``ControlPlaneConfig(on_verdict=...)``); the server binds itself at
    construction.  On a firing verdict the responder runs the shared
    :class:`ResponseEngine`, and enforcement lands on the fleet:
    quarantined streams are shed at admission
    (``tokens_shed["quarantined"]``), the backing volume of the owning
    drive is snapshotted (when that engine has a
    :class:`~repro.hw.smartssd.SmartSSD` attached), and killed streams
    additionally drop their session state.

    Attribution at the fleet level needs the window tokens, which the
    server does not retain; supply ``token_lookup`` (stream → iterable
    of the last ``window_length`` tokens) to enable it.
    """

    def __init__(self, policy: ResponsePolicy | None = None,
                 audit: AuditLog | None = None, telemetry=None,
                 engine=None, token_lookup=None):
        self.token_lookup = token_lookup
        self.engine = ResponseEngine(
            policy=policy, enforcer=self, engine=engine,
            audit=audit, telemetry=telemetry,
        )
        self.server = None
        self._device_index: int | None = None

    @property
    def audit(self) -> AuditLog:
        return self.engine.audit

    def bind(self, server) -> "FleetResponder":
        self.server = server
        return self

    def __call__(self, record) -> ResponseDecision:
        """Handle one :class:`~repro.core.serving.StreamVerdictRecord`."""
        if self.server is None:
            raise RuntimeError("FleetResponder is not bound to a server")
        self._device_index = record.device
        if self.token_lookup is not None:
            state_tokens = self.token_lookup(record.stream)
            if state_tokens is not None:
                for token in state_tokens:
                    self.engine.observe_token(record.stream, token)
        return self.engine.on_verdict(record.stream, record)

    # -- enforcer hooks -------------------------------------------------

    def _storage(self):
        if self.server is None or self._device_index is None:
            return None
        device = self.server.devices[self._device_index]
        return getattr(device.engine, "storage", None)

    def observe(self, stream) -> None:
        storage = self._storage()
        if storage is not None:
            SmartSsdEnforcer(storage).observe(stream)

    def write_block(self, stream) -> None:
        storage = self._storage()
        if storage is not None:
            SmartSsdEnforcer(storage).write_block(stream)

    def quarantine(self, stream) -> None:
        self.server.quarantine_stream(stream)
        storage = self._storage()
        if storage is not None:
            storage.snapshot_volume()
            SmartSsdEnforcer(storage).write_block(stream)

    def kill(self, stream) -> None:
        self.server.kill_stream(stream)
        storage = self._storage()
        if storage is not None:
            SmartSsdEnforcer(storage).write_block(stream)

    def restore(self, stream):
        storage = self._storage()
        if storage is None or storage.active_snapshot_id is None:
            return None
        return storage.restore_volume()
