"""Tamper-evident, hash-chained response audit log.

Every response transition (escalation, gated destructive action,
restore) is appended as one record whose hash covers its canonical JSON
payload *plus the previous record's hash* — mutating, dropping, or
reordering any record breaks every hash after it (:meth:`AuditLog.verify`).

Determinism is load-bearing: records carry only simulated, stream-local
coordinates (the verdict's window index — never wall-clock time, never
device indices), so

* two identical replays produce **bit-identical** logs, and
* a fault-injected replay produces the identical *per-stream* chains as
  the undisturbed run (composing the serving layer's verdict-sequence
  invariance under failover — see ``docs/serving.md``), even though the
  global interleaving across streams may shift with timing.

Both granularities are maintained: one global chain over all records in
append order, and one chain per stream (:meth:`AuditLog.stream_head`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

#: The ``prev_hash`` of the first record in any chain.
GENESIS_HASH = "0" * 64


class AuditTamperError(RuntimeError):
    """The audit chain failed verification."""


def _canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _entry_hash(payload: dict, prev_hash: str) -> str:
    digest = hashlib.sha256()
    digest.update(prev_hash.encode("ascii"))
    digest.update(b"\n")
    digest.update(_canonical(payload))
    return digest.hexdigest()


@dataclasses.dataclass(frozen=True)
class AuditRecord:
    """One hash-chained response transition.

    ``at`` is the stream-local window index of the verdict that caused
    the transition (simulated coordinates; failure-invariant).
    ``stream_sequence``/``stream_hash`` chain the record within its
    stream, independently of the global chain.
    """

    sequence: int
    stream: str
    at: int
    event: str
    action: str
    details: dict
    prev_hash: str
    entry_hash: str
    stream_sequence: int
    stream_hash: str

    def payload(self) -> dict:
        """The hashed content (global-chain flavour)."""
        return {
            "sequence": self.sequence,
            "stream": self.stream,
            "at": self.at,
            "event": self.event,
            "action": self.action,
            "details": self.details,
        }

    def stream_payload(self) -> dict:
        """The hashed content of the per-stream chain flavour."""
        return {
            "stream_sequence": self.stream_sequence,
            "stream": self.stream,
            "at": self.at,
            "event": self.event,
            "action": self.action,
            "details": self.details,
        }

    def as_dict(self) -> dict:
        record = self.payload()
        record["prev_hash"] = self.prev_hash
        record["entry_hash"] = self.entry_hash
        record["stream_sequence"] = self.stream_sequence
        record["stream_hash"] = self.stream_hash
        return record


class AuditLog:
    """Append-only hash chain of response transitions."""

    def __init__(self):
        self._records: list = []
        self._head = GENESIS_HASH
        self._stream_heads: dict = {}
        self._stream_counts: dict = {}

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> tuple:
        return tuple(self._records)

    @property
    def head_hash(self) -> str:
        """Hash of the latest record (genesis when empty)."""
        return self._head

    def stream_head(self, stream) -> str:
        """Head of one stream's own chain (genesis when unseen)."""
        return self._stream_heads.get(str(stream), GENESIS_HASH)

    def stream_heads(self) -> dict:
        """All per-stream chain heads, keyed by stream name."""
        return dict(self._stream_heads)

    def append(self, stream, at: int, event: str, action: str,
               details: dict | None = None) -> AuditRecord:
        """Append one transition; returns the chained record.

        ``details`` must be JSON-serialisable (it is hashed via its
        canonical JSON form).
        """
        name = str(stream)
        details = details or {}
        sequence = len(self._records)
        stream_sequence = self._stream_counts.get(name, 0)
        payload = {
            "sequence": sequence, "stream": name, "at": int(at),
            "event": event, "action": action, "details": details,
        }
        stream_payload = {
            "stream_sequence": stream_sequence, "stream": name,
            "at": int(at), "event": event, "action": action,
            "details": details,
        }
        prev = self._head
        stream_prev = self._stream_heads.get(name, GENESIS_HASH)
        record = AuditRecord(
            sequence=sequence,
            stream=name,
            at=int(at),
            event=event,
            action=action,
            details=details,
            prev_hash=prev,
            entry_hash=_entry_hash(payload, prev),
            stream_sequence=stream_sequence,
            stream_hash=_entry_hash(stream_payload, stream_prev),
        )
        self._records.append(record)
        self._head = record.entry_hash
        self._stream_heads[name] = record.stream_hash
        self._stream_counts[name] = stream_sequence + 1
        return record

    def verify(self) -> bool:
        """Recompute both chains; raises :class:`AuditTamperError` on any break."""
        head = GENESIS_HASH
        stream_heads: dict = {}
        for record in self._records:
            expected = _entry_hash(record.payload(), head)
            if expected != record.entry_hash:
                raise AuditTamperError(
                    f"record {record.sequence}: entry hash mismatch"
                )
            stream_prev = stream_heads.get(record.stream, GENESIS_HASH)
            if _entry_hash(record.stream_payload(), stream_prev) != record.stream_hash:
                raise AuditTamperError(
                    f"record {record.sequence}: stream hash mismatch"
                )
            head = record.entry_hash
            stream_heads[record.stream] = record.stream_hash
        if head != self._head:
            raise AuditTamperError("head hash does not match the chain")
        return True

    def to_jsonl(self) -> str:
        """The whole log as canonical JSON lines (bit-stable)."""
        return "".join(
            json.dumps(record.as_dict(), sort_keys=True, separators=(",", ":")) + "\n"
            for record in self._records
        )

    def write(self, path) -> None:
        """Write the JSONL log to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())

    @classmethod
    def read(cls, path) -> "AuditLog":
        """Load and verify a JSONL log previously written by :meth:`write`."""
        log = cls()
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                entry = json.loads(line)
                record = log.append(
                    entry["stream"], entry["at"], entry["event"],
                    entry["action"], entry["details"],
                )
                if (record.entry_hash != entry["entry_hash"]
                        or record.stream_hash != entry["stream_hash"]):
                    raise AuditTamperError(
                        f"record {entry['sequence']}: stored hashes do not "
                        "match the recomputed chain"
                    )
        return log
