"""Occlusion (leave-one-out) per-token attribution over a verdict window.

When a window fires, the operator's first question is *which calls did
it*: a response that quarantines a process should be able to point at
the `NtWriteFile`/`CryptEncrypt` burst (or the high-entropy overwrite
trigram, in the block-I/O modality) that convinced the classifier.

The method is deliberately the simplest faithful one: re-score the
window once per position with that position's token replaced by a
baseline token, all in **one** :meth:`infer_batch` call.  The score of
position *i* is ``p(original) - p(occluded_i)`` — how much confidence
that token was worth.  Because it reuses the engine's own batched
inference (batch-size invariant, bit-exact across backends), attribution
is deterministic: same window, same weights → bit-identical scores.

Cost: one extra batch of ``window_length`` sequences per attributed
verdict, which is why the policy layer computes it only at enforcement
escalations, not on every verdict.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class TokenAttribution:
    """One window position's leave-one-out score."""

    position: int       # index within the window
    token: int          # the original token id at that position
    score: float        # p(original) - p(occluded); higher = more culpable


@dataclasses.dataclass(frozen=True)
class WindowAttribution:
    """Per-token attribution of one firing window."""

    window_index: int
    probability: float      # the un-occluded window probability
    baseline_token: int
    scores: tuple           # one TokenAttribution per window position

    def top(self, k: int) -> tuple:
        """The ``k`` most culpable positions, highest score first.

        Ties break on position (earlier first) so the result is total-
        ordered and deterministic.
        """
        ranked = sorted(self.scores, key=lambda a: (-a.score, a.position))
        return tuple(ranked[:max(0, int(k))])

    def as_dict(self, top_k: int | None = None) -> dict:
        chosen = self.scores if top_k is None else self.top(top_k)
        return {
            "window_index": self.window_index,
            "probability": self.probability,
            "baseline_token": self.baseline_token,
            "top": [[a.position, a.token, a.score] for a in chosen],
        }


def attribute_window(engine, window, window_index: int = 0,
                     baseline_token: int = 0,
                     max_batch: int = 128) -> WindowAttribution:
    """Leave-one-out attribution of one window via the engine itself.

    Parameters
    ----------
    engine:
        A loaded :class:`~repro.core.engine.CSDInferenceEngine`; the
        window length must match its configured sequence length.
    window:
        The firing window's token ids, shape ``(window_length,)``.
    baseline_token:
        The token each position is replaced with when occluded.  Token 0
        by default — any fixed vocabulary entry works; what matters for
        determinism is that it is constant.
    max_batch:
        Chunk size for the occlusion batch (``infer_batch`` is
        batch-size invariant, so chunking never changes a bit).
    """
    window = np.asarray(window, dtype=np.int64)
    if window.ndim != 1:
        raise ValueError(f"window must be 1-D, got shape {window.shape}")
    length = int(window.shape[0])
    expected = engine.config.dimensions.sequence_length
    if length != expected:
        raise ValueError(
            f"window length {length} does not match the engine's "
            f"sequence length {expected}"
        )
    variants = np.tile(window, (length + 1, 1))
    for position in range(length):
        variants[position + 1, position] = baseline_token
    probabilities: list = []
    for start in range(0, length + 1, max(1, int(max_batch))):
        chunk = variants[start:start + max(1, int(max_batch))]
        probabilities.append(engine.infer_batch(chunk).probabilities)
    probs = np.concatenate(probabilities)
    original = float(probs[0])
    scores = tuple(
        TokenAttribution(
            position=position,
            token=int(window[position]),
            score=float(original - probs[position + 1]),
        )
        for position in range(length)
    )
    return WindowAttribution(
        window_index=int(window_index),
        probability=original,
        baseline_token=int(baseline_token),
        scores=scores,
    )
