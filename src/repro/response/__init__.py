"""Verdict-driven response and recovery subsystem (ROADMAP items 2–3).

The paper's argument for storage-resident detection is that the drive
can mitigate "near-instantaneously".  This package closes that loop: it
consumes streaming verdicts (:class:`~repro.core.sessions.SessionManager`
/ :class:`~repro.ransomware.monitor.ProcessMonitor` /
:class:`~repro.core.serving.FleetServer`) and turns them into graduated,
audited storage actions — see ``docs/response.md``.

* :mod:`repro.response.attribution` — bit-exact occlusion attribution:
  which tokens of the firing window triggered the verdict;
* :mod:`repro.response.audit` — tamper-evident hash-chained audit log;
* :mod:`repro.response.policy` — the :class:`ResponsePolicy` state
  machine mapping verdict confidence to the escalation ladder
  (observe → write-block → quarantine-stream → kill → restore), with
  destructive rungs gated behind explicit policy flags;
* :mod:`repro.response.legacy` — the retired
  ``MitigationEngine``/``ProtectedStorage`` surface, reimplemented on
  this subsystem.
"""

from __future__ import annotations

from repro.hw.smartssd import IntegrityError, WriteRefused
from repro.response.attribution import (
    TokenAttribution,
    WindowAttribution,
    attribute_window,
)
from repro.response.audit import GENESIS_HASH, AuditLog, AuditRecord, AuditTamperError
from repro.response.legacy import MitigationEngine, ProtectedStorage, QuarantineEvent
from repro.response.policy import (
    ACTION_KILL,
    ACTION_OBSERVE,
    ACTION_QUARANTINE,
    ACTION_RESTORE,
    ACTION_WRITE_BLOCK,
    ESCALATION_LADDER,
    FleetResponder,
    ResponseDecision,
    ResponseEngine,
    ResponsePolicy,
    SmartSsdEnforcer,
)

#: Legacy alias: the exception the retired ``ProtectedStorage`` raised.
WriteBlocked = WriteRefused

__all__ = [
    "ACTION_KILL",
    "ACTION_OBSERVE",
    "ACTION_QUARANTINE",
    "ACTION_RESTORE",
    "ACTION_WRITE_BLOCK",
    "ESCALATION_LADDER",
    "GENESIS_HASH",
    "AuditLog",
    "AuditRecord",
    "AuditTamperError",
    "FleetResponder",
    "IntegrityError",
    "MitigationEngine",
    "ProtectedStorage",
    "QuarantineEvent",
    "ResponseDecision",
    "ResponseEngine",
    "ResponsePolicy",
    "SmartSsdEnforcer",
    "TokenAttribution",
    "WindowAttribution",
    "WriteBlocked",
    "WriteRefused",
    "attribute_window",
]
