"""CPU inference baseline (Table I's "Intel Xeon CPU with 13 GB of RAM").

Two layers:

* a **functional** baseline — a real NumPy implementation of one LSTM
  forward-pass item that produces the same outputs as the float engine,
  and can be wall-clock timed on the local machine; and
* a **calibrated latency model** of the paper's testbed — per-item times
  drawn from the distribution the paper's Table I implies (framework op
  dispatch dominates a single-item step on an eager deep-learning stack;
  mean ~991.6 us with sample sigma ~394.9 us, which reproduces the
  reported 95% CI [217.47, 1765.69] us).

The Table I benchmark uses the calibrated model (we do not have the
authors' Xeon); the functional path is there so tests can verify that what
is being timed computes the right thing.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.core.weights import HostWeights
from repro.nn.activations import sigmoid, softsign

#: Table I-implied parameters of the paper's CPU latency distribution (us).
PAPER_CPU_MEAN_US = 991.57750
PAPER_CPU_SIGMA_US = 394.95


@dataclasses.dataclass(frozen=True)
class CalibratedLatencyModel:
    """Truncated-normal per-item latency distribution, in microseconds.

    ``floor_us`` prevents nonphysical draws (a forward pass cannot be
    faster than its raw FLOP time).
    """

    mean_us: float
    sigma_us: float
    floor_us: float = 1.0

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        draws = rng.normal(self.mean_us, self.sigma_us, size=count)
        return np.maximum(draws, self.floor_us)


#: The paper's CPU testbed distribution.
PAPER_CPU_MODEL = CalibratedLatencyModel(
    mean_us=PAPER_CPU_MEAN_US, sigma_us=PAPER_CPU_SIGMA_US, floor_us=50.0
)


class CpuInferenceBaseline:
    """Single-item LSTM forward pass on the CPU.

    Parameters
    ----------
    weights:
        Host-layout weights (same arrays the CSD engine consumes, so the
        two substrates are numerically comparable).
    latency_model:
        Calibrated per-item latency distribution of the modelled testbed.
    """

    name = "CPU"

    def __init__(
        self,
        weights: HostWeights,
        latency_model: CalibratedLatencyModel = PAPER_CPU_MODEL,
    ):
        self.weights = weights
        self.latency_model = latency_model
        hidden = weights.gates["i"].matrix.shape[0]
        self._hidden_size = hidden

    # ------------------------------------------------------------------
    # Function
    # ------------------------------------------------------------------

    def step(self, token_id: int, hidden: np.ndarray, cell: np.ndarray) -> tuple:
        """One forward-pass item; returns ``(hidden, cell)``."""
        x_t = self.weights.embedding[token_id]
        concatenated = np.concatenate([hidden, x_t])
        gates = {}
        for name, gate in self.weights.gates.items():
            pre = gate.matrix @ concatenated + gate.bias
            gates[name] = sigmoid(pre) if name in ("i", "f", "o") else softsign(pre)
        cell = gates["f"] * cell + gates["i"] * gates["c"]
        hidden = gates["o"] * softsign(cell)
        return hidden, cell

    def infer_sequence(self, token_ids) -> float:
        """Classify a full sequence; returns the probability."""
        hidden = np.zeros(self._hidden_size)
        cell = np.zeros(self._hidden_size)
        for token in token_ids:
            hidden, cell = self.step(int(token), hidden, cell)
        logit = self.weights.fc_weights @ hidden + self.weights.fc_bias
        return float(sigmoid(np.asarray([logit]))[0])

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    def sample_per_item_latencies(self, trials: int, seed: int = 0) -> np.ndarray:
        """Per-item latencies (us) from the calibrated testbed model."""
        rng = np.random.default_rng(seed)
        return self.latency_model.sample(rng, trials)

    def measure_local_per_item(self, trials: int = 100, warmup: int = 10) -> np.ndarray:
        """Actually time :meth:`step` on this machine (us per call).

        Not the Table I path — this machine is not the paper's Xeon — but
        useful for sanity checks and for users who want their own numbers.
        """
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        hidden = np.zeros(self._hidden_size)
        cell = np.zeros(self._hidden_size)
        for _ in range(warmup):
            hidden, cell = self.step(0, hidden, cell)
        samples = np.empty(trials)
        for index in range(trials):
            start = time.perf_counter()
            hidden, cell = self.step(index % self.weights.embedding.shape[0], hidden, cell)
            samples[index] = (time.perf_counter() - start) * 1e6
        return samples
