"""GPU inference baseline (Table I's "NVIDIA A100 GPU with 40 GB").

A single LSTM item on a GPU is dominated not by arithmetic (a 32x40
mat-vec is trivially small for an A100) but by fixed per-item costs —
kernel launches for every gate/elementwise op, and host<->device transfers
for the item and the recurrent state.  That is exactly the "data movement
bottleneck of GPUs" the paper's parallelisation section calls out, and why
the CSD wins by orders of magnitude on this workload shape.

:class:`GpuCostModel` decomposes the per-item time into those named terms;
the defaults are calibrated so the induced distribution reproduces the
paper's Table I row (mean 741.35 us, 95% interval [394.45, 1088.25] us —
sample sigma ~177 us).  The functional output is computed with the same
NumPy math as the CPU baseline (the arithmetic is identical; only the cost
model differs).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.baselines.cpu import CpuInferenceBaseline
from repro.core.weights import HostWeights

#: Table I-implied parameters of the paper's GPU latency distribution (us).
PAPER_GPU_MEAN_US = 741.35336
PAPER_GPU_SIGMA_US = 177.0


@dataclasses.dataclass(frozen=True)
class GpuCostModel:
    """Named per-item cost terms for single-item recurrent inference.

    The deterministic part decomposes the mean; ``jitter_sigma_us``
    captures scheduler/queue noise (launch latency on a shared GPU varies
    by tens of percent run to run).
    """

    kernel_launch_us: float = 8.0          # one CUDA launch, driver round trip
    launches_per_item: int = 24            # 4 gates x (matmul+bias+act) + cell/hidden ops
    h2d_transfer_us: float = 12.0          # item + state upload over PCIe
    d2h_transfer_us: float = 12.0          # state readback (eager frameworks sync)
    framework_dispatch_us: float = 525.35  # Python-side op graph dispatch
    compute_us: float = 0.003              # the actual mat-vec FLOPs
    jitter_sigma_us: float = PAPER_GPU_SIGMA_US

    @property
    def deterministic_us(self) -> float:
        """Sum of the named cost terms (the distribution's mean)."""
        return (
            self.kernel_launch_us * self.launches_per_item
            + self.h2d_transfer_us
            + self.d2h_transfer_us
            + self.framework_dispatch_us
            + self.compute_us
        )

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw per-item latencies in microseconds."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        draws = rng.normal(self.deterministic_us, self.jitter_sigma_us, size=count)
        floor = self.compute_us + self.kernel_launch_us  # can't beat one launch
        return np.maximum(draws, floor)


#: The paper's A100 testbed model (deterministic part sums to 741.353 us).
PAPER_GPU_MODEL = GpuCostModel()


class GpuInferenceBaseline:
    """Single-item LSTM forward pass on a modelled A100."""

    name = "GPU"

    def __init__(self, weights: HostWeights, cost_model: GpuCostModel = PAPER_GPU_MODEL):
        self.cost_model = cost_model
        # The arithmetic is device-independent; reuse the CPU functional path.
        self._functional = CpuInferenceBaseline(weights)

    def infer_sequence(self, token_ids) -> float:
        """Classify a full sequence; returns the probability."""
        return self._functional.infer_sequence(token_ids)

    def step(self, token_id: int, hidden: np.ndarray, cell: np.ndarray) -> tuple:
        """One forward-pass item (functionally identical to CPU)."""
        return self._functional.step(token_id, hidden, cell)

    def sample_per_item_latencies(self, trials: int, seed: int = 0) -> np.ndarray:
        """Per-item latencies (us) from the calibrated cost model."""
        rng = np.random.default_rng(seed)
        return self.cost_model.sample(rng, trials)
