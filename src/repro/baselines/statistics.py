"""Latency statistics for the Table I methodology.

The paper reports each baseline's execution time as a mean with a 95%
Confidence Interval.  The reported intervals are symmetric about the mean
with half-width ``1.96 * sigma`` of the *sample distribution* (not the
standard error of the mean): e.g. the CPU row's [217.47, 1765.69] us
around 991.58 us implies a sample sigma of ~394.9 us.  We reproduce that
convention in :func:`normal_interval` and additionally provide the
standard-error CI of the mean for completeness.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np


@dataclasses.dataclass(frozen=True)
class LatencySummary:
    """Mean and 95% interval of a latency sample set, in microseconds."""

    mean_us: float
    ci_low_us: float
    ci_high_us: float
    sample_count: int

    def __str__(self) -> str:
        return (
            f"{self.mean_us:.5f} us "
            f"(95% CI {self.ci_low_us:.5f} - {self.ci_high_us:.5f}, "
            f"n={self.sample_count})"
        )


def normal_interval(samples_us, confidence: float = 0.95) -> LatencySummary:
    """Paper-style interval: mean ± z * sample standard deviation."""
    samples = np.asarray(samples_us, dtype=np.float64)
    if samples.size < 2:
        raise ValueError(f"need at least 2 samples, got {samples.size}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    mean = float(samples.mean())
    sigma = float(samples.std(ddof=1))
    z = _normal_quantile(0.5 + confidence / 2.0)
    return LatencySummary(
        mean_us=mean,
        ci_low_us=mean - z * sigma,
        ci_high_us=mean + z * sigma,
        sample_count=samples.size,
    )


def mean_confidence_interval(samples_us, confidence: float = 0.95) -> LatencySummary:
    """Standard-error CI of the mean (normal approximation)."""
    samples = np.asarray(samples_us, dtype=np.float64)
    if samples.size < 2:
        raise ValueError(f"need at least 2 samples, got {samples.size}")
    mean = float(samples.mean())
    stderr = float(samples.std(ddof=1)) / math.sqrt(samples.size)
    z = _normal_quantile(0.5 + confidence / 2.0)
    return LatencySummary(
        mean_us=mean,
        ci_low_us=mean - z * stderr,
        ci_high_us=mean + z * stderr,
        sample_count=samples.size,
    )


def _normal_quantile(p: float) -> float:
    """Standard normal quantile via Acklam's rational approximation.

    Accurate to ~1e-9 over (0, 1); avoids a SciPy dependency for one
    function.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low, p_high = 0.02425, 1.0 - 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p <= p_high:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        )
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
    )
