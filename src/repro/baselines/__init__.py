"""CPU and GPU baselines plus the Table I comparison harness."""

from repro.baselines.comparison import (
    ComparisonRow,
    HardwareComparison,
    format_table,
    hardware_comparison,
)
from repro.baselines.cpu import (
    CalibratedLatencyModel,
    CpuInferenceBaseline,
    PAPER_CPU_MEAN_US,
    PAPER_CPU_MODEL,
    PAPER_CPU_SIGMA_US,
)
from repro.baselines.gpu import (
    GpuCostModel,
    GpuInferenceBaseline,
    PAPER_GPU_MEAN_US,
    PAPER_GPU_MODEL,
    PAPER_GPU_SIGMA_US,
)
from repro.baselines.statistics import (
    LatencySummary,
    mean_confidence_interval,
    normal_interval,
)

__all__ = [
    "CalibratedLatencyModel",
    "ComparisonRow",
    "CpuInferenceBaseline",
    "GpuCostModel",
    "GpuInferenceBaseline",
    "HardwareComparison",
    "LatencySummary",
    "PAPER_CPU_MEAN_US",
    "PAPER_CPU_MODEL",
    "PAPER_CPU_SIGMA_US",
    "PAPER_GPU_MEAN_US",
    "PAPER_GPU_MODEL",
    "PAPER_GPU_SIGMA_US",
    "format_table",
    "hardware_comparison",
    "mean_confidence_interval",
    "normal_interval",
]
