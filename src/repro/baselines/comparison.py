"""Table I assembly: FPGA vs CPU vs GPU per-item execution time.

:func:`hardware_comparison` runs the three paths — the CSD engine's
deterministic hardware-emulation figure (the paper lists its CI as N/A for
exactly this reason) and the two calibrated baseline distributions — and
returns the table rows plus the headline speedup factors.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.baselines.cpu import CpuInferenceBaseline
from repro.baselines.gpu import GpuInferenceBaseline
from repro.baselines.statistics import LatencySummary, normal_interval
from repro.core.engine import CSDInferenceEngine


@dataclasses.dataclass(frozen=True)
class ComparisonRow:
    """One Table I row."""

    device: str
    mean_us: float
    ci_low_us: float | None    # None renders as the paper's "N/A"
    ci_high_us: float | None


@dataclasses.dataclass(frozen=True)
class HardwareComparison:
    """The full Table I plus derived speedups."""

    fpga: ComparisonRow
    cpu: ComparisonRow
    gpu: ComparisonRow
    #: Max |engine - CPU baseline| probability over the cross-check batch
    #: (None when no sample sequences were supplied).  The timing rows
    #: compare *latency models*; this field confirms the three paths also
    #: agree *functionally* on real inputs, using the engine's batch path.
    functional_divergence: float | None = None

    @property
    def speedup_over_cpu(self) -> float:
        return self.cpu.mean_us / self.fpga.mean_us

    @property
    def speedup_over_gpu(self) -> float:
        """The paper's headline: 344.6x over the A100."""
        return self.gpu.mean_us / self.fpga.mean_us

    def rows(self) -> list:
        return [self.fpga, self.cpu, self.gpu]


def _row_from_summary(device: str, summary: LatencySummary) -> ComparisonRow:
    return ComparisonRow(
        device=device,
        mean_us=summary.mean_us,
        ci_low_us=summary.ci_low_us,
        ci_high_us=summary.ci_high_us,
    )


def hardware_comparison(
    engine: CSDInferenceEngine,
    cpu: CpuInferenceBaseline,
    gpu: GpuInferenceBaseline,
    trials: int = 1000,
    seed: int = 0,
    sample_sequences=None,
) -> HardwareComparison:
    """Measure all three devices and assemble Table I.

    Parameters
    ----------
    engine:
        A loaded CSD engine (use the FIXED_POINT level for the paper's
        configuration).
    cpu, gpu:
        Baselines built over the *same* weights as the engine.
    trials:
        Sample count for each baseline's latency distribution.
    seed:
        Base RNG seed (the GPU stream is offset so draws are independent).
    sample_sequences:
        Optional ``(N, T)`` batch of real token sequences.  When given,
        the engine classifies them through its vectorised batch path and
        the result is compared against the functional CPU baseline; the
        max absolute probability divergence lands in
        ``HardwareComparison.functional_divergence`` (expected ~0 for
        float engines, small quantisation error for fixed-point ones).
    """
    fpga_row = ComparisonRow(
        device="FPGA",
        mean_us=engine.per_item_microseconds(),
        ci_low_us=None,
        ci_high_us=None,
    )
    cpu_summary = normal_interval(cpu.sample_per_item_latencies(trials, seed=seed))
    gpu_summary = normal_interval(gpu.sample_per_item_latencies(trials, seed=seed + 1))
    divergence = None
    if sample_sequences is not None:
        batch = np.asarray(sample_sequences)
        engine_probs = engine.infer_batch(batch).probabilities
        cpu_probs = np.array([cpu.infer_sequence(row) for row in batch])
        divergence = float(np.max(np.abs(engine_probs - cpu_probs)))
    return HardwareComparison(
        fpga=fpga_row,
        cpu=_row_from_summary("CPU", cpu_summary),
        gpu=_row_from_summary("GPU", gpu_summary),
        functional_divergence=divergence,
    )


def format_table(comparison: HardwareComparison) -> str:
    """Render the comparison in the paper's Table I layout."""
    lines = [f"{'':6s}{'Execution time':>18s}   {'95% CI':>34s}"]
    for row in comparison.rows():
        if row.ci_low_us is None:
            ci = "N/A"
        else:
            ci = f"{row.ci_low_us:.5f} us - {row.ci_high_us:.5f} us"
        lines.append(f"{row.device:6s}{row.mean_us:>15.5f} us   {ci:>34s}")
    lines.append(
        f"speedup over CPU: {comparison.speedup_over_cpu:.1f}x, "
        f"over GPU: {comparison.speedup_over_gpu:.1f}x"
    )
    if comparison.functional_divergence is not None:
        lines.append(
            "functional cross-check: max |engine - CPU| probability = "
            f"{comparison.functional_divergence:.2e}"
        )
    return "\n".join(lines)
