"""Command-line interface: ``python -m repro <command>``.

Commands cover the operational loop a data-center operator would run:

* ``dataset``  — synthesise the API-call dataset and write the CSV;
* ``train``    — offline-train the classifier and export the weight file;
* ``evaluate`` — deploy a weight file onto the CSD engine and evaluate a
  CSV dataset (accuracy/precision/recall/F1 + per-item time);
* ``scan``     — sandbox one ransomware family variant and stream it
  through a deployed detector, reporting the alarm point;
* ``report``   — print the Vitis-style emulation report for a
  configuration (utilisation + per-kernel timing);
* ``monitor``  — interleave sandboxed multi-process traces and stream
  them through the session-based process monitor (incremental per-token
  inference, batched across processes, memory-budgeted; see
  ``docs/streaming.md``);
* ``fleet-serve`` — run the deterministic multi-device serving
  simulator (dynamic batching, bounded queues, timeout/failover) over a
  seeded synthetic workload and print latency/shed/utilisation figures;
* ``control-plane`` — run the hierarchical rack/node/drive control
  plane (shard-affine routing, QoS admission, autoscaling, rolling
  drains) over a simulated fleet and print the operator report (see
  ``docs/control_plane.md``);
* ``generalize`` — leave-k-families-out evaluation across the API-call,
  block-I/O, and filesystem signal modalities, reporting per-family
  held-out recall and the in-distribution-vs-held-out recall gap (see
  ``docs/generalization.md``);
* ``respond`` — train a detector in-process, replay an attack scenario
  (ransomware plus benign streams, any signal modality) against a
  self-protecting drive under the graduated response policy, and print
  the enforcement report: detection latency, bytes blocked vs admitted,
  benign false blocks, and the verified hash-chained audit log (see
  ``docs/response.md``).

The global ``--telemetry <path>`` flag (before the subcommand) records
structured telemetry — counters, latency histograms, and kernel-level
span trees per the ``docs/observability.md`` contract — as JSON lines at
``<path>`` for any command that drives the engine.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.engine import CSDInferenceEngine
from repro.core.kernels.backends import available_backends
from repro.hw.emulation import render_engine_report
from repro.nn.model import SequenceClassifier
from repro.nn.serialization import dump_weights
from repro.nn.trainer import Trainer, TrainingConfig
from repro.ransomware.dataset import build_dataset, load_csv, save_csv
from repro.ransomware.detector import RansomwareDetector
from repro.ransomware.families import ALL_FAMILIES
from repro.ransomware.sandbox import CuckooSandbox


def _add_dataset_command(subparsers) -> None:
    parser = subparsers.add_parser("dataset", help="synthesise the dataset CSV")
    parser.add_argument("output", help="CSV path to write")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="fraction of the paper's 29K sequences (default 0.1)")
    parser.add_argument("--sequence-length", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    parser.set_defaults(handler=_run_dataset)


def _run_dataset(args) -> int:
    dataset = build_dataset(
        scale=args.scale, sequence_length=args.sequence_length, seed=args.seed
    )
    save_csv(dataset, args.output)
    print(f"wrote {len(dataset)} sequences "
          f"({dataset.ransomware_fraction:.0%} ransomware) to {args.output}")
    return 0


def _add_train_command(subparsers) -> None:
    parser = subparsers.add_parser("train", help="train and export weights")
    parser.add_argument("dataset", help="CSV produced by the dataset command")
    parser.add_argument("weights", help="weight file path to write")
    parser.add_argument("--epochs", type=int, default=25)
    parser.add_argument("--learning-rate", type=float, default=0.005)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--test-fraction", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=0)
    _add_training_arguments(parser)
    parser.set_defaults(handler=_run_train)


def _add_training_arguments(parser) -> None:
    from repro.nn.kernels import DEFAULT_TRAIN_BACKEND, available_training_backends

    parser.add_argument(
        "--train-backend", choices=available_training_backends(),
        default=DEFAULT_TRAIN_BACKEND,
        help="training kernel backend; 'fused' is bit-exact with "
             "'reference' and faster (see docs/performance.md)")
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="content-addressed model cache directory: identical "
             "training runs restore trained weights from disk instead "
             "of retraining (see docs/performance.md)")


def _make_model_cache(args, telemetry):
    if not getattr(args, "cache_dir", None):
        return None
    from repro.nn.cache import ModelCache

    return ModelCache(args.cache_dir, telemetry=telemetry)


def _run_train(args) -> int:
    dataset = load_csv(args.dataset)
    train, test = dataset.train_test_split(args.test_fraction, seed=args.seed)
    model = SequenceClassifier(seed=args.seed)
    telemetry = getattr(args, "_telemetry", None)
    trainer = Trainer(
        model,
        TrainingConfig(
            epochs=args.epochs, batch_size=args.batch_size,
            learning_rate=args.learning_rate,
            eval_every=max(1, args.epochs // 10),
            backend=args.train_backend,
        ),
        telemetry=telemetry,
        cache=_make_model_cache(args, telemetry),
    )
    history = trainer.fit(train.sequences, train.labels, test.sequences, test.labels)
    for record in history.records:
        print(f"epoch {record.epoch:4d}  loss {record.train_loss:.4f}  "
              f"test acc {record.test_accuracy:.4f}")
    dump_weights(model, args.weights)
    print(f"peak accuracy {history.peak.test_accuracy:.4f}; "
          f"weights written to {args.weights}")
    return 0


def _add_evaluate_command(subparsers) -> None:
    parser = subparsers.add_parser("evaluate", help="evaluate weights on the CSD")
    parser.add_argument("weights", help="weight file from the train command")
    parser.add_argument("dataset", help="CSV dataset to evaluate")
    parser.add_argument("--optimization", choices=[l.name for l in OptimizationLevel],
                        default="FIXED_POINT")
    parser.add_argument("--limit", type=int, default=500,
                        help="max sequences to run through the engine")
    parser.set_defaults(handler=_run_evaluate)


def _run_evaluate(args) -> int:
    import numpy as np

    from repro.nn.metrics import classification_report

    dataset = load_csv(args.dataset)
    engine = CSDInferenceEngine.from_weight_file(
        args.weights, sequence_length=dataset.sequence_length
    )
    engine = _engine_at(engine, OptimizationLevel[args.optimization],
                        backend=getattr(args, "backend", None))
    _maybe_attach_telemetry(engine, args)
    subset = dataset.subset(np.arange(min(args.limit, len(dataset))))
    metrics = classification_report(
        engine.predict(subset.sequences, workers=getattr(args, "workers", 1)),
        subset.labels,
    )
    engine.shutdown_pool()
    for name, value in metrics.items():
        print(f"{name:10s} {value:.4f}")
    print(f"per-item inference: {engine.per_item_microseconds():.5f} us "
          f"({args.optimization})")
    return 0


def _engine_at(engine: CSDInferenceEngine, level: OptimizationLevel,
               backend: str | None = None) -> CSDInferenceEngine:
    backend = backend or engine.config.backend
    if engine.config.optimization is level and engine.config.backend == backend:
        return engine
    config = dataclasses.replace(
        engine.config, optimization=level, backend=backend
    )
    return CSDInferenceEngine(config, engine.weights)


def _maybe_attach_telemetry(engine: CSDInferenceEngine, args) -> None:
    """Attach the session's Telemetry (from ``--telemetry``) if enabled."""
    telemetry = getattr(args, "_telemetry", None)
    if telemetry is not None:
        engine.attach_telemetry(telemetry)


def _add_scan_command(subparsers) -> None:
    parser = subparsers.add_parser("scan", help="stream a sandboxed family trace")
    parser.add_argument("weights", help="weight file from the train command")
    parser.add_argument("family", choices=[f.name for f in ALL_FAMILIES])
    parser.add_argument("--variant", type=int, default=0)
    parser.add_argument("--sequence-length", type=int, default=100)
    parser.add_argument("--threshold", type=float, default=0.5)
    parser.add_argument("--stride", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.set_defaults(handler=_run_scan)


def _run_scan(args) -> int:
    engine = CSDInferenceEngine.from_weight_file(
        args.weights, sequence_length=args.sequence_length
    )
    engine = _engine_at(engine, engine.config.optimization,
                        backend=getattr(args, "backend", None))
    _maybe_attach_telemetry(engine, args)
    detector = RansomwareDetector(engine, threshold=args.threshold, stride=args.stride)
    family = next(f for f in ALL_FAMILIES if f.name == args.family)
    trace = CuckooSandbox(seed=args.seed).execute_ransomware(family, args.variant)
    report = detector.scan_trace(trace.calls)
    print(f"{family.name} variant {args.variant}: {len(trace)} API calls")
    if report.detected:
        verdict = report.first_detection
        print(f"DETECTED at call {report.calls_until_detection} "
              f"(p={verdict.probability:.3f}, "
              f"{verdict.inference_microseconds:.0f} us of FPGA time)")
        return 0
    print("NOT DETECTED")
    return 1


def _add_report_command(subparsers) -> None:
    parser = subparsers.add_parser("report", help="emulation report for a config")
    parser.add_argument("--optimization", choices=[l.name for l in OptimizationLevel],
                        default="FIXED_POINT")
    parser.add_argument("--gate-cus", type=int, default=4, choices=(1, 2, 4))
    parser.set_defaults(handler=_run_report)


def _run_report(args) -> int:
    config = EngineConfig(
        optimization=OptimizationLevel[args.optimization],
        num_gate_cus=args.gate_cus,
        backend=getattr(args, "backend", None) or "reference",
    )
    engine = CSDInferenceEngine.build_unloaded(config)
    _maybe_attach_telemetry(engine, args)
    print(render_engine_report(engine), end="")
    return 0


def _add_monitor_command(subparsers) -> None:
    parser = subparsers.add_parser(
        "monitor",
        help="stream interleaved multi-process traces through the "
             "session-based process monitor",
    )
    parser.add_argument("weights", help="weight file from the train command")
    parser.add_argument("--ransomware", type=int, default=1,
                        help="number of ransomware processes to interleave")
    parser.add_argument("--benign", type=int, default=3,
                        help="number of benign processes to interleave")
    parser.add_argument("--sequence-length", type=int, default=100)
    parser.add_argument("--threshold", type=float, default=0.5)
    parser.add_argument("--stride", type=int, default=10)
    parser.add_argument("--optimization", choices=[l.name for l in OptimizationLevel],
                        default="FIXED_POINT")
    parser.add_argument("--memory-budget-kib", type=int, default=None,
                        help="resident session-state budget; excess "
                             "processes are evicted to checkpoints")
    parser.add_argument("--idle-after", type=int, default=None,
                        help="evict a process after this many ticks "
                             "without a call")
    parser.add_argument("--early-exit", action="store_true",
                        help="stop stepping a process once it is flagged")
    parser.add_argument("--seed", type=int, default=0)
    parser.set_defaults(handler=_run_monitor)


def _run_monitor(args) -> int:
    from repro.ransomware.benign import ALL_BENIGN_PROFILES
    from repro.ransomware.monitor import ProcessMonitor
    from repro.ransomware.replay import HostReplay

    engine = CSDInferenceEngine.from_weight_file(
        args.weights, sequence_length=args.sequence_length
    )
    engine = _engine_at(engine, OptimizationLevel[args.optimization],
                        backend=getattr(args, "backend", None))
    _maybe_attach_telemetry(engine, args)
    sandbox = CuckooSandbox(seed=args.seed)
    traces = [
        sandbox.execute_ransomware(
            ALL_FAMILIES[i % len(ALL_FAMILIES)],
            i // len(ALL_FAMILIES),
        )
        for i in range(args.ransomware)
    ]
    traces += [
        sandbox.execute_benign(
            ALL_BENIGN_PROFILES[i % len(ALL_BENIGN_PROFILES)],
            i // len(ALL_BENIGN_PROFILES),
        )
        for i in range(args.benign)
    ]
    events = HostReplay.interleave(traces, seed=args.seed)
    monitor = ProcessMonitor(
        engine, threshold=args.threshold, stride=args.stride,
        memory_budget_bytes=(args.memory_budget_kib * 1024
                             if args.memory_budget_kib is not None else None),
        idle_after_steps=args.idle_after,
        early_exit=args.early_exit,
    )
    sources = {
        1000 + index: (trace.source, trace.is_ransomware)
        for index, trace in enumerate(traces)
    }
    first_detection: dict = {}
    calls_fed: dict = {}
    # Greedy tick batching: walk the interleaved schedule and group one
    # call per process into each batched step — the same cross-process
    # batching a live tick-driven monitor would achieve.
    tick: dict = {}
    ticks = 0

    def flush() -> None:
        nonlocal ticks
        if not tick:
            return
        ticks += 1
        for pid, verdict in monitor.observe_tick(tick).items():
            if verdict.is_ransomware and pid not in first_detection:
                first_detection[pid] = (calls_fed[pid], verdict)
        tick.clear()

    for event in events:
        if event.process_id in tick:
            flush()
        tick[event.process_id] = event.call
        calls_fed[event.process_id] = calls_fed.get(event.process_id, 0) + 1
    flush()

    print(f"monitored {len(traces)} processes "
          f"({args.ransomware} ransomware, {args.benign} benign), "
          f"{len(events)} interleaved calls in {ticks} batched ticks")
    for pid in sorted(sources):
        source, is_ransomware = sources[pid]
        label = "ransomware" if is_ransomware else "benign"
        if pid in first_detection:
            calls, verdict = first_detection[pid]
            print(f"pid {pid} [{label:10s}] {source}: FLAGGED at call {calls} "
                  f"(p={verdict.probability:.3f})")
        else:
            print(f"pid {pid} [{label:10s}] {source}: clean "
                  f"({calls_fed.get(pid, 0)} calls)")
    stats = monitor.stats()
    print(f"sessions: {stats['resident_sessions']} resident, "
          f"{stats['checkpointed_sessions']} checkpointed, "
          f"{stats['slot_steps']} slot-steps over {stats['steps']} ticks")
    if stats["evictions"]:
        breakdown = ", ".join(
            f"{k}={v}" for k, v in sorted(stats["evictions"].items())
        )
        print(f"evictions: {breakdown} (restores {stats['restores']})")
    missed = [pid for pid, (_, ransom) in sources.items()
              if ransom and pid not in first_detection]
    return 1 if missed else 0


def _add_fleet_serve_command(subparsers) -> None:
    parser = subparsers.add_parser(
        "fleet-serve",
        help="simulate serving a monitored-stream workload on a CSD fleet",
    )
    parser.add_argument("weights", help="weight file from the train command")
    parser.add_argument("--devices", type=int, default=2)
    parser.add_argument("--streams", type=int, default=8,
                        help="number of monitored streams")
    parser.add_argument("--calls-per-second", type=float, default=20_000.0,
                        help="API-call rate of each monitored stream")
    parser.add_argument("--stride", type=int, default=10,
                        help="detection stride (calls per window)")
    parser.add_argument("--duration-ms", type=int, default=200)
    parser.add_argument("--sequence-length", type=int, default=100)
    parser.add_argument("--optimization", choices=[l.name for l in OptimizationLevel],
                        default="FIXED_POINT")
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--max-wait-us", type=int, default=2_000)
    parser.add_argument("--queue-depth", type=int, default=64)
    parser.add_argument("--timeout-us", type=int, default=50_000)
    parser.add_argument("--max-retries", type=int, default=2)
    parser.add_argument("--headroom", type=float, default=0.8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--kill-device", type=int, default=None,
                        help="inject a device failure at --kill-at-ms")
    parser.add_argument("--kill-at-ms", type=int, default=None,
                        help="when the injected failure strikes (default: mid-run)")
    parser.set_defaults(handler=_run_fleet_serve)


def _run_fleet_serve(args) -> int:
    import dataclasses as _dc

    from repro.core.fleet import FleetPlanner, MonitoredStream
    from repro.core.serving import (
        FleetServer,
        ServingConfig,
        build_fleet,
        generate_workload,
    )
    from repro.core.throughput import throughput_report
    from repro.core.weights import HostWeights
    from repro.hw.faults import DeviceFailFault, FaultPlan

    weights = HostWeights.from_file(args.weights)
    dims = _dc.replace(weights.dimensions, sequence_length=args.sequence_length)
    config = EngineConfig(
        dimensions=dims, optimization=OptimizationLevel[args.optimization],
        backend=getattr(args, "backend", None) or "reference",
    )
    engines = build_fleet(weights, args.devices, config=config)
    streams = [
        MonitoredStream(f"stream{i}", args.calls_per_second,
                        detection_stride=args.stride)
        for i in range(args.streams)
    ]
    planner = FleetPlanner(throughput_report(engines[0]), headroom=args.headroom)
    duration_us = args.duration_ms * 1000
    fault_plans = {}
    if args.kill_device is not None:
        kill_at_us = (args.kill_at_ms * 1000 if args.kill_at_ms is not None
                      else duration_us // 2)
        fault_plans[args.kill_device] = FaultPlan(
            device_fail=DeviceFailFault(at_us=kill_at_us)
        )
    workload = generate_workload(
        streams, duration_us=duration_us,
        sequence_length=args.sequence_length,
        vocab_size=dims.vocab_size, seed=args.seed,
    )
    server = FleetServer(
        engines, streams,
        ServingConfig(
            max_batch=args.max_batch, max_wait_us=args.max_wait_us,
            queue_depth=args.queue_depth, timeout_us=args.timeout_us,
            max_retries=args.max_retries,
        ),
        planner=planner, fault_plans=fault_plans,
        telemetry=getattr(args, "_telemetry", None),
        workers=getattr(args, "workers", 1),
    )
    report = server.serve(workload)
    print(f"fleet: {args.devices} devices, {args.streams} streams x "
          f"{args.calls_per_second:.0f} calls/s (stride {args.stride}), "
          f"{args.duration_ms} ms simulated")
    print(f"offered {report.offered}  completed {report.completed_count}  "
          f"shed {report.shed_count} ({report.shed_rate:.1%})")
    if report.shed:
        breakdown = ", ".join(f"{k}={v}" for k, v in sorted(report.shed.items()))
        print(f"shed breakdown: {breakdown}")
    if report.retries:
        breakdown = ", ".join(f"{k}={v}" for k, v in sorted(report.retries.items()))
        print(f"retries: {breakdown}")
    if report.completed:
        print(f"latency p50 {report.latency_percentile_us(50):.0f} us  "
              f"p99 {report.latency_percentile_us(99):.0f} us")
    for index, utilization in enumerate(report.device_utilization()):
        print(f"device {index}: utilization {utilization:.1%}")
    if report.device_failures:
        print(f"device failures injected: {report.device_failures}")
    return 0


def _add_control_plane_command(subparsers) -> None:
    parser = subparsers.add_parser(
        "control-plane",
        help="run the hierarchical rack/node/drive control plane over a "
             "simulated CSD fleet (QoS admission, autoscaling, drains)",
    )
    parser.add_argument("weights", help="weight file from the train command")
    parser.add_argument("--racks", type=int, default=2)
    parser.add_argument("--nodes-per-rack", type=int, default=2)
    parser.add_argument("--drives-per-node", type=int, default=3)
    parser.add_argument("--active-per-node", type=int, default=2,
                        help="drives per node in service at start "
                             "(the rest are autoscaling standby)")
    parser.add_argument("--shards-per-drive", type=int, default=4)
    parser.add_argument("--qos", action="append", default=None,
                        metavar="NAME=PRIORITY[:CAP]",
                        help="QoS class spec, repeatable (e.g. gold=2 "
                             "bronze=0:500); default gold=2 + bronze=0")
    parser.add_argument("--streams-per-class", type=int, default=2_000)
    parser.add_argument("--hot-per-class", type=int, default=200,
                        help="streams per class that emit one token every "
                             "round (these complete windows and produce "
                             "verdicts); the rest register once and park "
                             "as checkpoints")
    parser.add_argument("--rounds", type=int, default=32)
    parser.add_argument("--round-us", type=int, default=5_000)
    parser.add_argument("--registration-rounds", type=int, default=None)
    parser.add_argument("--hot-rounds", type=int, default=None)
    parser.add_argument("--window", type=int, default=16,
                        help="detection window (engine sequence length)")
    parser.add_argument("--stride", type=int, default=16)
    parser.add_argument("--max-batch", type=int, default=256)
    parser.add_argument("--max-wait-us", type=int, default=200)
    parser.add_argument("--queue-depth", type=int, default=4_096)
    parser.add_argument("--memory-budget-mib", type=float, default=8.0,
                        help="per-drive resident-session budget")
    parser.add_argument("--no-autoscale", action="store_true")
    parser.add_argument("--high-watermark", type=float, default=0.75)
    parser.add_argument("--low-watermark", type=float, default=0.25)
    parser.add_argument("--sustain-rounds", type=int, default=2)
    parser.add_argument("--cooldown-rounds", type=int, default=3)
    parser.add_argument("--drain-drive", type=int, default=None,
                        help="manually drain this drive at --drain-round")
    parser.add_argument("--drain-round", type=int, default=None)
    parser.add_argument("--rolling-upgrade", action="store_true",
                        help="rolling drain/restore of every active drive, "
                             "one per round")
    parser.add_argument("--seed", type=int, default=0)
    parser.set_defaults(handler=_run_control_plane)


def _parse_qos_specs(specs) -> tuple:
    from repro.core.control_plane import QosClass

    if not specs:
        return (QosClass("gold", priority=2), QosClass("bronze", priority=0))
    classes = []
    for spec in specs:
        try:
            name, _, rest = spec.partition("=")
            priority, _, cap = rest.partition(":")
            classes.append(QosClass(
                name=name, priority=int(priority),
                max_streams=int(cap) if cap else None,
            ))
        except ValueError as error:
            raise SystemExit(
                f"bad --qos spec {spec!r} (want NAME=PRIORITY[:CAP]): {error}"
            )
    return tuple(classes)


def _run_control_plane(args) -> int:
    import dataclasses as _dc

    from repro.core.control_plane import (
        AutoscalePolicy,
        ControlPlane,
        ControlPlaneConfig,
        TopologySpec,
        generate_fleet_rounds,
    )
    from repro.core.serving import ServingConfig, build_fleet
    from repro.core.sessions import SessionConfig
    from repro.core.weights import HostWeights

    weights = HostWeights.from_file(args.weights)
    dims = _dc.replace(weights.dimensions, sequence_length=args.window)
    config = EngineConfig(
        dimensions=dims, optimization=OptimizationLevel.FIXED_POINT,
        backend=getattr(args, "backend", None) or "reference",
    )
    topology = TopologySpec(
        racks=args.racks, nodes_per_rack=args.nodes_per_rack,
        drives_per_node=args.drives_per_node,
        active_per_node=min(args.active_per_node, args.drives_per_node),
        shards_per_drive=args.shards_per_drive,
    )
    engines = build_fleet(weights, topology.total_drives, config=config)
    classes = _parse_qos_specs(args.qos)
    autoscale = None if args.no_autoscale else AutoscalePolicy(
        high_watermark=args.high_watermark, low_watermark=args.low_watermark,
        sustain_rounds=args.sustain_rounds,
        cooldown_rounds=args.cooldown_rounds,
    )
    plane = ControlPlane(
        engines, topology,
        ControlPlaneConfig(
            round_us=args.round_us, classes=classes, autoscale=autoscale,
            serving=ServingConfig(
                max_batch=args.max_batch, max_wait_us=args.max_wait_us,
                queue_depth=args.queue_depth,
            ),
            sessions=SessionConfig(
                stride=args.stride,
                memory_budget_bytes=int(args.memory_budget_mib * 2**20),
                idle_after_steps=4,
            ),
            backend=getattr(args, "backend", None),
            max_events_per_round=None,
        ),
        telemetry=getattr(args, "_telemetry", None),
    )
    if args.rolling_upgrade:
        plane.start_rolling_upgrade()
    rounds = generate_fleet_rounds(
        classes, rounds=args.rounds, round_us=args.round_us,
        streams_per_class=args.streams_per_class,
        hot_per_class=args.hot_per_class,
        registration_rounds=args.registration_rounds,
        hot_rounds=args.hot_rounds, vocab_size=dims.vocab_size,
        seed=args.seed,
    )
    for index, arrivals in enumerate(rounds):
        if args.drain_drive is not None and index == (args.drain_round or 0):
            migrated = plane.drain(args.drain_drive)
            print(f"drained drive {args.drain_drive} at round {index}: "
                  f"{migrated} sessions migrated")
        plane.run_round(arrivals)
    report = plane.finish()

    print(f"topology: {args.racks} racks x {args.nodes_per_rack} nodes x "
          f"{args.drives_per_node} drives "
          f"({topology.initial_active_per_node} active/node at start, "
          f"{topology.num_shards} shards)")
    print(f"rounds: {report.rounds} x {args.round_us} us  "
          f"tokens offered {report.tokens_offered}")
    for qos in classes:
        shed = report.tokens_shed.get(qos.name, {})
        shed_text = (" shed " + ", ".join(f"{k}={v}" for k, v in sorted(shed.items()))
                     if shed else "")
        print(f"  class {qos.name} (priority {qos.priority}): "
              f"streams {report.streams_admitted[qos.name]} admitted / "
              f"{report.streams_denied[qos.name]} denied, tokens "
              f"{report.tokens_admitted[qos.name]} admitted{shed_text}")
    print(f"sessions: peak {report.peak_concurrent_sessions} concurrent "
          f"(final {report.final_concurrent_sessions}), peak resident "
          f"{report.peak_resident_bytes_per_drive} B/drive "
          f"(budget {report.resident_budget_bytes} B, "
          f"{'OK' if report.within_memory_budget else 'EXCEEDED'})")
    if report.verdict_count:
        print(f"verdicts: {report.verdict_count}  latency p50 "
              f"{report.verdict_latency_percentile_us(50):.0f} us  p99 "
              f"{report.verdict_latency_percentile_us(99):.0f} us")
    scale_text = ", ".join(
        f"r{e.round_index}:n{e.node}:{e.direction}" for e in report.scale_events
    ) or "none"
    print(f"autoscale events: {scale_text}  active drives at end: "
          f"{report.active_drives}")
    if report.drains or report.restores:
        drain_text = ", ".join(f"{k}={v}" for k, v in sorted(report.drains.items()))
        print(f"drains: {drain_text or 'none'}  restores: {report.restores}  "
              f"shard moves: {report.shard_moves}  sessions migrated: "
              f"{report.migrated_sessions}")
    return 0


def _add_generalize_command(subparsers) -> None:
    parser = subparsers.add_parser(
        "generalize",
        help="leave-k-families-out evaluation across signal modalities",
    )
    parser.add_argument(
        "--modalities", default="api,block_io,filesystem",
        help="comma-separated modality names (default: all three)")
    parser.add_argument("--held-out", type=int, default=2, metavar="K",
                        help="families held out per fold (default 2)")
    parser.add_argument("--folds", type=int, default=None,
                        help="number of folds (default: every family "
                             "held out exactly once)")
    parser.add_argument("--scale", type=float, default=0.04,
                        help="dataset scale per modality (default 0.04)")
    parser.add_argument("--sequence-length", type=int, default=60)
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--threshold", type=float, default=0.5)
    parser.add_argument("--optimization", action="append", default=None,
                        choices=[l.name for l in OptimizationLevel],
                        help="engine rung(s) to evaluate at (repeatable; "
                             "default FIXED_POINT)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the full report as JSON to PATH")
    _add_training_arguments(parser)
    parser.set_defaults(handler=_run_generalize)


def _run_generalize(args) -> int:
    import json

    from repro.ransomware.generalization import (
        GeneralizationConfig,
        evaluate_generalization,
    )

    modalities = tuple(m.strip() for m in args.modalities.split(",") if m.strip())
    levels = tuple(
        OptimizationLevel[name]
        for name in (args.optimization or ["FIXED_POINT"])
    )
    config = GeneralizationConfig(
        modalities=modalities,
        held_out_per_fold=args.held_out,
        folds=args.folds,
        scale=args.scale,
        sequence_length=args.sequence_length,
        seed=args.seed,
        threshold=args.threshold,
        optimizations=levels,
        epochs=args.epochs,
        workers=max(1, getattr(args, "workers", 1)),
        train_backend=args.train_backend,
        cache_dir=args.cache_dir,
    )
    report = evaluate_generalization(
        config, telemetry=getattr(args, "_telemetry", None), progress=print
    )
    primary = levels[0]
    print()
    print(f"leave-{args.held_out}-out over {len(report.fold_sets)} fold(s); "
          f"recall gap = in-distribution recall - held-out recall "
          f"at {primary.name}:")
    for result in report.modalities:
        print(f"  {result.modality:<11s} (vocab {result.vocabulary_size:>3d}): "
              f"held-out recall {result.mean_held_out_recall(primary):.3f}  "
              f"gap {result.mean_recall_gap(primary):+.3f}")
        for family, recall in result.per_family_recall(primary).items():
            print(f"    {family:<12s} {recall:.3f}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.json}")
    return 0


def _add_respond_command(subparsers) -> None:
    parser = subparsers.add_parser(
        "respond",
        help="replay an attack scenario under the graduated response policy",
    )
    parser.add_argument("--modality", default="api",
                        choices=("api", "block_io", "filesystem"),
                        help="signal modality to train and replay (default api)")
    parser.add_argument("--ransomware", type=int, default=1,
                        help="ransomware streams in the scenario (default 1)")
    parser.add_argument("--benign", type=int, default=3,
                        help="benign streams in the scenario (default 3)")
    parser.add_argument("--benign-length", type=int, default=300,
                        help="benign trace length in events (default 300)")
    parser.add_argument("--threshold", type=float, default=0.7,
                        help="write-block threshold; the confirmation "
                             "streak counts windows at or above it "
                             "(default 0.7)")
    parser.add_argument("--quarantine-threshold", type=float, default=0.95,
                        help="stream-quarantine threshold (default 0.95)")
    parser.add_argument("--kill-threshold", type=float, default=None,
                        help="kill threshold (default: kill rung disabled)")
    parser.add_argument("--confirmations", type=int, default=4,
                        help="consecutive confirmed windows before "
                             "escalating (default 4)")
    parser.add_argument("--allow-kill", action="store_true",
                        help="unlock the destructive kill rung (otherwise "
                             "it is gated and audited)")
    parser.add_argument("--allow-restore", action="store_true",
                        help="unlock snapshot restore after a kill")
    parser.add_argument("--monitor-threshold", type=float, default=0.5)
    parser.add_argument("--stride", type=int, default=5)
    parser.add_argument("--scale", type=float, default=0.08,
                        help="training dataset scale (default 0.08)")
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--sequence-length", type=int, default=60)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--user-objects", type=int, default=16,
                        help="pre-seeded user objects the attack "
                             "overwrites (default 16)")
    parser.add_argument("--audit", metavar="PATH", default=None,
                        help="write the hash-chained audit log (JSON "
                             "lines) to PATH")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the full report as JSON to PATH")
    parser.set_defaults(handler=_run_respond)


def _run_respond(args) -> int:
    import json

    from repro.core.engine import engine_at_level
    from repro.hw.smartssd import SmartSSD
    from repro.ransomware.replay import ScenarioReplay, build_scenario
    from repro.ransomware.traces.adapters import MODALITIES
    from repro.response.policy import ResponsePolicy

    telemetry = getattr(args, "_telemetry", None)
    modality = MODALITIES[args.modality]
    print(f"[train] {args.modality}: scale {args.scale}, "
          f"{args.epochs} epochs, window {args.sequence_length}")
    dataset = modality.build_dataset(
        scale=args.scale, sequence_length=args.sequence_length, seed=args.seed
    )
    train_split, test_split = dataset.train_test_split(0.2, seed=args.seed)
    model = SequenceClassifier(vocab_size=modality.vocabulary.size,
                               seed=args.seed)
    Trainer(
        model,
        TrainingConfig(epochs=args.epochs, eval_every=args.epochs,
                       learning_rate=0.005, seed=args.seed),
    ).fit(train_split.sequences, train_split.labels,
          test_split.sequences, test_split.labels)
    engine = engine_at_level(
        model, OptimizationLevel.FIXED_POINT,
        sequence_length=args.sequence_length,
    )

    policy = ResponsePolicy(
        observe_threshold=args.threshold,
        write_block_threshold=args.threshold,
        quarantine_threshold=(
            None if args.quarantine_threshold is None
            else max(args.threshold, args.quarantine_threshold)
        ),
        kill_threshold=args.kill_threshold,
        confirmations=args.confirmations,
        allow_kill=args.allow_kill,
        allow_restore=args.allow_restore,
    )
    streams = build_scenario(
        args.modality, ransomware=args.ransomware, benign=args.benign,
        seed=args.seed, benign_length=args.benign_length,
    )
    storage = SmartSSD()
    replay = ScenarioReplay(
        engine, storage, policy=policy,
        monitor_threshold=args.monitor_threshold, stride=args.stride,
        telemetry=telemetry,
    )
    user_keys = replay.seed_user_objects(count=args.user_objects)
    print(f"[replay] {len(streams)} streams "
          f"({args.ransomware} ransomware, {args.benign} benign), "
          f"{args.user_objects} user objects at risk")
    outcomes = replay.run(streams, seed=args.seed, user_keys=user_keys)
    report = replay.report(outcomes)

    for outcome in outcomes.values():
        kind = "ransomware" if outcome.is_ransomware else "benign"
        enforced = (
            f"{outcome.final_action} at window "
            f"{outcome.enforced_window_index} "
            f"(latency {outcome.detection_latency_tokens} tokens)"
            if outcome.enforced_window_index is not None else "not enforced"
        )
        print(f"  {outcome.name:<24s} {kind:<10s} "
              f"blocked {outcome.bytes_blocked:>10d} B / admitted "
              f"{outcome.bytes_admitted:>10d} B  {enforced}")
    print(f"[storage] {report['storage']}")
    print(f"[response] actions {report['response']['actions']}, "
          f"{report['response']['audit_records']} audit records, "
          f"head {report['audit_head'][:16]}…")
    replay.audit.verify()
    print("[audit] hash chain verified")
    if args.audit:
        replay.audit.write(args.audit)
        print(f"[audit] written to {args.audit}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.json}")
    benign_blocked = sum(
        o.writes_blocked for o in outcomes.values() if not o.is_ransomware
    )
    if benign_blocked:
        print(f"warning: {benign_blocked} benign writes blocked")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CSD-based LSTM inference for ransomware detection "
                    "(DSN-S 2024 reproduction)",
    )
    parser.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="write structured telemetry (JSON lines, schema in "
             "docs/observability.md) to PATH",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard inference across N forked worker processes sharing "
             "the weights through shared memory (bit-exact with N=1; "
             "see docs/performance.md)",
    )
    parser.add_argument(
        "--backend", choices=available_backends(), default=None,
        help="kernel backend for the inference/session hot path "
             "(default: the engine's configured backend, normally "
             "'reference'; 'fused' is bit-exact and faster — see "
             "docs/performance.md)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_dataset_command(subparsers)
    _add_train_command(subparsers)
    _add_evaluate_command(subparsers)
    _add_scan_command(subparsers)
    _add_report_command(subparsers)
    _add_monitor_command(subparsers)
    _add_fleet_serve_command(subparsers)
    _add_control_plane_command(subparsers)
    _add_generalize_command(subparsers)
    _add_respond_command(subparsers)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    telemetry = None
    if args.telemetry:
        from repro.telemetry import JsonLinesExporter, Telemetry

        telemetry = Telemetry(exporters=[JsonLinesExporter(args.telemetry)])
    args._telemetry = telemetry
    try:
        return args.handler(args)
    finally:
        if telemetry is not None:
            telemetry.close()


if __name__ == "__main__":
    sys.exit(main())
