"""Gradient-descent optimisers for the from-scratch substrate.

Parameters are addressed by string keys (e.g. ``"lstm/W_x"``) so an
optimiser instance can own state for every layer of a model without the
model having to know about optimiser internals.
"""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Base class: applies keyed gradient updates to keyed parameters."""

    def step(self, params: dict, grads: dict) -> None:
        """Update ``params`` in place from ``grads`` (matching keys).

        Both dicts map parameter names to NumPy arrays.  Keys present in
        ``params`` but absent from ``grads`` are left untouched, so frozen
        layers simply omit their gradients.
        """
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0):
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: dict = {}

    def step(self, params: dict, grads: dict) -> None:
        for key, grad in grads.items():
            if key not in params:
                raise KeyError(f"gradient for unknown parameter {key!r}")
            if self.momentum:
                velocity = self._velocity.setdefault(key, np.zeros_like(grad))
                velocity *= self.momentum
                velocity -= self.learning_rate * grad
                params[key] += velocity
            else:
                params[key] -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction.

    The default hyper-parameters are the TensorFlow defaults the paper's
    offline training would have used.
    """

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-7,
    ):
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {beta1}, {beta2}")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: dict = {}
        self._v: dict = {}
        self._t = 0

    def step(self, params: dict, grads: dict) -> None:
        self._t += 1
        lr_t = (
            self.learning_rate
            * np.sqrt(1.0 - self.beta2**self._t)
            / (1.0 - self.beta1**self._t)
        )
        for key, grad in grads.items():
            if key not in params:
                raise KeyError(f"gradient for unknown parameter {key!r}")
            m = self._m.setdefault(key, np.zeros_like(grad))
            v = self._v.setdefault(key, np.zeros_like(grad))
            m += (1.0 - self.beta1) * (grad - m)
            v += (1.0 - self.beta2) * (grad * grad - v)
            params[key] -= lr_t * m / (np.sqrt(v) + self.epsilon)


def clip_gradients(grads: dict, max_norm: float) -> float:
    """Scale all gradients in place so their global L2 norm ≤ ``max_norm``.

    Gradient clipping is essential for stable BPTT over length-100
    sequences.  Returns the pre-clip global norm, which the trainer logs.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    for grad in grads.values():
        total += float(np.sum(grad * grad))
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for grad in grads.values():
            grad *= scale
    return norm
