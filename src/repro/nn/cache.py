"""Content-addressed model cache: skip retraining identical runs.

A training run in this repo is a pure function of (a) the model's initial
weights (which encode the architecture and the init seed), (b) the
:class:`~repro.nn.trainer.TrainingConfig`, and (c) the exact train/test
split bytes.  :class:`ModelCache` hashes all three into a sha256 key and
stores the trained weights (the round-trip-exact text format from
``repro.nn.serialization``) plus the :class:`~repro.nn.trainer.ConvergenceHistory`
records on disk — so repeated benchmark runs, golden refreshes, and CI's
second generalization pass skip retraining entirely and restore the
bit-identical trained model.

The key deliberately *excludes* ``TrainingConfig.backend``: the fused
training kernel is bit-exact with the reference (enforced by a build-time
self-check and the hypothesis parity suite), so a model trained by either
backend is the same model and may share a cache entry.

Corrupt or unreadable entries are invalidated (deleted and counted) and
treated as misses, so a damaged cache degrades to a retrain, never a wrong
model.  Writes are atomic (temp file + ``os.replace``), which also makes
concurrent fold workers writing disjoint keys safe.

Counters (documented in docs/observability.md):
``repro_train_cache_hits_total`` / ``repro_train_cache_misses_total`` /
``repro_train_cache_invalidations_total``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.nn.serialization import SECTION_NAMES, dump_weights, load_weights
from repro.nn.trainer import ConvergenceHistory, EpochRecord

#: Metric names (documented in docs/observability.md).
METRIC_CACHE_HITS = "repro_train_cache_hits_total"
METRIC_CACHE_MISSES = "repro_train_cache_misses_total"
METRIC_CACHE_INVALIDATIONS = "repro_train_cache_invalidations_total"

#: Bump to invalidate every existing entry on a format change.
CACHE_SCHEMA_VERSION = 1


def _update_with_array(digest, array: np.ndarray) -> None:
    array = np.ascontiguousarray(array)
    digest.update(str(array.dtype).encode())
    digest.update(repr(array.shape).encode())
    digest.update(array.tobytes())


class ModelCache:
    """Disk cache of trained models keyed by training-run content hash.

    Parameters
    ----------
    directory:
        Cache root; created if missing.  One ``<key>.weights.txt`` +
        ``<key>.meta.json`` pair per entry.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` mirroring the plain
        ``hits``/``misses``/``invalidations`` attributes as counters.
    """

    def __init__(self, directory, telemetry=None):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.telemetry = telemetry
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def _count(self, metric: str) -> None:
        if self.telemetry is not None:
            self.telemetry.counter(metric).inc()

    # -- key -----------------------------------------------------------

    def key_for(
        self,
        model,
        config,
        train_sequences,
        train_labels,
        test_sequences,
        test_labels,
    ) -> str:
        """sha256 over initial weights + config + both split byte streams."""
        digest = hashlib.sha256()
        digest.update(f"repro-model-cache-v{CACHE_SCHEMA_VERSION};".encode())
        digest.update(f"activation={model.lstm.cell_activation_name};".encode())
        for array in model.get_weights():
            _update_with_array(digest, array)
        for field in dataclasses.fields(config):
            if field.name == "backend":
                continue  # bit-exact across backends, by contract
            digest.update(f"{field.name}={getattr(config, field.name)!r};".encode())
        for array in (train_sequences, train_labels, test_sequences, test_labels):
            _update_with_array(digest, np.asarray(array))
        return digest.hexdigest()

    # -- entries ---------------------------------------------------------

    def _paths(self, key: str) -> tuple:
        return (
            self.directory / f"{key}.weights.txt",
            self.directory / f"{key}.meta.json",
        )

    def load(self, key: str, model):
        """Restore a cached run into ``model``; returns its history or ``None``.

        A readable entry sets the model's weights to the trained values and
        returns a :class:`ConvergenceHistory`.  Missing entries count a
        miss; undecodable or shape-mismatched entries are deleted and count
        an invalidation *and* a miss (the caller retrains either way).  The
        model is only mutated once the whole entry has validated.
        """
        weights_path, meta_path = self._paths(key)
        if not (weights_path.exists() and meta_path.exists()):
            self.misses += 1
            self._count(METRIC_CACHE_MISSES)
            return None
        try:
            meta = json.loads(meta_path.read_text())
            if meta.get("schema") != CACHE_SCHEMA_VERSION:
                raise ValueError(f"schema {meta.get('schema')!r}")
            records = [EpochRecord(**record) for record in meta["records"]]
            sections = load_weights(str(weights_path))
            weights = [sections[name] for name in SECTION_NAMES]
            expected = [w.shape for w in model.get_weights()]
            if [w.shape for w in weights] != expected:
                raise ValueError("weight shape mismatch")
        except Exception:
            self.invalidations += 1
            self._count(METRIC_CACHE_INVALIDATIONS)
            weights_path.unlink(missing_ok=True)
            meta_path.unlink(missing_ok=True)
            self.misses += 1
            self._count(METRIC_CACHE_MISSES)
            return None
        model.set_weights(weights)
        self.hits += 1
        self._count(METRIC_CACHE_HITS)
        return ConvergenceHistory(records=records)

    def store(self, key: str, model, records) -> None:
        """Persist the trained ``model`` + history ``records`` under ``key``."""
        weights_path, meta_path = self._paths(key)
        meta = {
            "schema": CACHE_SCHEMA_VERSION,
            "records": [dataclasses.asdict(record) for record in records],
        }
        for path, text in (
            (weights_path, dump_weights(model)),
            (meta_path, json.dumps(meta)),
        ):
            tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
            tmp.write_text(text)
            os.replace(tmp, path)
