"""Text-file weight exchange between offline training and the host program.

Section III-A: "Once the embeddings and LSTM have been trained until
convergence, the associated weights and biases are extracted and written to
a text file. ... the host program ... ingests this text file amid
initializing the FPGA."

The format here is deliberately plain — a human-inspectable sectioned text
file — because that is the contract the paper describes.  Each section is::

    # <name> <dim0> <dim1> ...
    <one value per line, row-major>

Section names are fixed: ``embedding``, ``lstm_W_x``, ``lstm_W_h``,
``lstm_b``, ``fc_W``, ``fc_b`` — the embedding table, the three arrays of
Keras' ``LSTM.get_weights()``, and the fully-connected head.
"""

from __future__ import annotations

import io

import numpy as np

from repro.nn.model import SequenceClassifier

#: Canonical section order in the weight file.
SECTION_NAMES = ("embedding", "lstm_W_x", "lstm_W_h", "lstm_b", "fc_W", "fc_b")


def dump_weights(model: SequenceClassifier, path=None) -> str:
    """Serialise a trained model's parameters to the text format.

    Parameters
    ----------
    model:
        The trained classifier.
    path:
        Optional file path (str or Path).  When given, the text is also
        written there.

    Returns
    -------
    str
        The serialised weight file contents.
    """
    arrays = dict(zip(SECTION_NAMES, model.get_weights()))
    buffer = io.StringIO()
    for name in SECTION_NAMES:
        array = np.asarray(arrays[name], dtype=np.float64)
        dims = " ".join(str(d) for d in array.shape)
        buffer.write(f"# {name} {dims}\n")
        for value in array.reshape(-1):
            # repr() of a Python float round-trips the full 64-bit value.
            buffer.write(f"{float(value)!r}\n")
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text


def load_weights(source) -> dict:
    """Parse a weight file back into named NumPy arrays.

    Parameters
    ----------
    source:
        A file path, or a string containing the file contents (anything
        with a newline is treated as contents).

    Returns
    -------
    dict
        Mapping of section name → ``numpy.ndarray`` with original shapes.

    Raises
    ------
    ValueError
        On malformed input: unknown/duplicate sections, wrong value counts,
        or missing sections.
    """
    if isinstance(source, str) and "\n" in source:
        text = source
    else:
        with open(source) as handle:
            text = handle.read()

    arrays: dict = {}
    current_name = None
    current_shape: tuple = ()
    current_values: list = []

    def flush() -> None:
        if current_name is None:
            return
        expected = int(np.prod(current_shape)) if current_shape else 1
        if len(current_values) != expected:
            raise ValueError(
                f"section {current_name!r}: expected {expected} values, got "
                f"{len(current_values)}"
            )
        arrays[current_name] = np.array(current_values, dtype=np.float64).reshape(
            current_shape
        )

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            flush()
            parts = line[1:].split()
            if not parts:
                raise ValueError(f"line {line_number}: empty section header")
            name = parts[0]
            if name not in SECTION_NAMES:
                raise ValueError(f"line {line_number}: unknown section {name!r}")
            if name in arrays:
                raise ValueError(f"line {line_number}: duplicate section {name!r}")
            current_name = name
            current_shape = tuple(int(d) for d in parts[1:])
            current_values = []
        else:
            if current_name is None:
                raise ValueError(f"line {line_number}: value before any section header")
            try:
                current_values.append(float(line))
            except ValueError:
                raise ValueError(
                    f"line {line_number}: not a number: {line!r}"
                ) from None
    flush()

    missing = [name for name in SECTION_NAMES if name not in arrays]
    if missing:
        raise ValueError(f"weight file missing sections: {missing}")
    return arrays


def load_into_model(source, model: SequenceClassifier) -> SequenceClassifier:
    """Load a weight file into an existing (architecture-matching) model."""
    arrays = load_weights(source)
    model.set_weights([arrays[name] for name in SECTION_NAMES])
    return model
