"""Training kernel backends: the ``reference``/``fused`` registry.

Training time in this repo is dominated by the recurrent timestep loops in
``LSTM.forward``/``LSTM.backward`` — and inside those, by Python/NumPy
dispatch overhead: the masked two-branch ``sigmoid`` (a boolean gather and
two scatters per gate per timestep), ``sigmoid_grad`` re-running the full
sigmoid on stored pre-activations, four slab copies per step, and ~10 fresh
array allocations per batch.  This module gives :class:`~repro.nn.trainer.Trainer`
pluggable *training backends* for that hot path, mirroring the session
kernel registry in ``core/kernels/backends.py``:

* ``reference`` — ``SequenceClassifier.train_batch`` invoked exactly as
  before.  It is the bit-exactness oracle: every other backend must
  reproduce its loss and every gradient array bit for bit, so
  ``ConvergenceHistory``, golden detector scores, and the generalization
  benchmark numbers are unchanged no matter which backend trained the model.
* ``fused`` — the same BPTT arithmetic restructured as one precompiled
  forward+backward pass per batch over persistent preallocated ``(B, T, H)``
  buffers.  Per timestep the forward runs one dgemm, one ``np.exp`` over the
  packed ``(B, 4H)`` pre-activations, and a single fused element-wise kernel
  (gate select, softsign candidate, cell and hidden update); the backward
  runs a single fused kernel for the whole element-wise gradient chain and
  keeps the dgemms in NumPy with operand views identical to the reference.
  The element-wise kernels compile through the same acceleration ladder as
  the session backend: numba JIT when importable, else a small C kernel
  built once per hidden size with the system compiler, else a vectorised
  NumPy formulation of the same arithmetic.

Why the restructuring is bit-exact
----------------------------------
Every transcendental stays in NumPy: the only ``exp`` is computed as
``z = np.exp(-|pre|)`` on the packed pre-activations, and both sigmoid
branches of the reference (``1/(1+exp(-x))`` for ``x >= 0``,
``exp(x)/(1+exp(x))`` otherwise) reduce to ``1/(1+z)`` / ``z/(1+z)`` on
exactly that ``z`` — ``np.exp`` is element-wise and value-deterministic, so
hoisting it out of the masked formulation cannot change a bit.  Everything
the compiled kernels fuse is a chain of ``+ - * /`` and ``fabs`` — IEEE-754
operations with one correctly-rounded answer regardless of how they are
compiled — with FMA contraction disabled explicitly (``-ffp-contract=off``;
numba's default ``fastmath=False`` likewise).  ``sigmoid_grad`` on a stored
pre-activation equals ``s * (1 - s)`` on the stored gate activation, because
the stored activation *is* ``sigmoid(pre)`` bit for bit.  The dgemms
(``x @ W_x``, recurrent ``h @ W_h``, and the four gradient matmuls) keep the
exact reference operand views and run through the same BLAS, with ``out=``
targets that NumPy fills with the identical dgemm result.

On top of that construction argument, a build-time self-check runs probe
batches through the fused pass and the reference ``train_batch`` and
compares the loss and every gradient array bit for bit before the backend
is ever trusted; any mismatch degrades the kernel — gracefully, counted by
``repro_train_backend_fallback_total{reason=...}`` — first to the NumPy
formulation, then to the reference path.

Fallback reasons
----------------
``no_numba`` / ``jit_error``
    numba missing or a tier failed to compile; the next acceleration tier
    runs instead (C kernel, else vectorised NumPy — still fused).
``unsupported_activation``
    the model's cell activation is not the softsign deployment cell the
    fused kernels hardcode (e.g. the tanh ablation); reference math.
``self_check_failed``
    the build-time probe found a bit mismatch vs the reference on this
    host; reference math.

See ``docs/performance.md`` ("The training pipeline") and
``docs/observability.md`` for the metric contract.
"""

from __future__ import annotations

import collections

import numpy as np

from repro.nn.losses import binary_cross_entropy_with_logits

#: Metric names (documented in docs/observability.md).
METRIC_TRAIN_FALLBACK = "repro_train_backend_fallback_total"
METRIC_TRAIN_BATCHES = "repro_train_batches_total"

#: ``repro_train_backend_fallback_total``'s ``reason`` label values.
FALLBACK_NO_NUMBA = "no_numba"
FALLBACK_JIT_ERROR = "jit_error"
FALLBACK_UNSUPPORTED = "unsupported_activation"
FALLBACK_SELF_CHECK = "self_check_failed"

#: The default backend of :class:`~repro.nn.trainer.TrainingConfig`.
DEFAULT_TRAIN_BACKEND = "reference"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: dict = {}


def register_training_backend(name: str, factory) -> None:
    """Register ``factory(model, telemetry=None) -> TrainingKernel``."""
    _REGISTRY[name] = factory


def available_training_backends() -> tuple:
    """Registered training backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_training_backend(name: str, model, telemetry=None):
    """Instantiate the named backend bound to ``model``."""
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown training backend {name!r}; available: "
            f"{', '.join(available_training_backends())}"
        )
    return factory(model, telemetry=telemetry)


class TrainingKernel:
    """Base class: how a trainer executes ``train_batch``.

    A kernel is bound to one :class:`~repro.nn.model.SequenceClassifier`
    and exposes the same ``train_batch(token_ids, labels) -> (loss, grads)``
    contract the model does, so the :class:`~repro.nn.trainer.Trainer` loop
    is backend-agnostic.
    """

    name = "abstract"

    def __init__(self, model, telemetry=None):
        self.model = model
        self.telemetry = telemetry
        #: Plain counters mirroring ``repro_train_backend_fallback_total``.
        self.fallback_reasons: dict = {}
        self._batch_counter = (
            telemetry.counter(METRIC_TRAIN_BATCHES, backend=self.name)
            if telemetry is not None
            else None
        )

    def record_fallback(self, reason: str) -> None:
        self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1
        if self.telemetry is not None:
            self.telemetry.counter(METRIC_TRAIN_FALLBACK, reason=reason).inc()

    def _count_batch(self) -> None:
        if self._batch_counter is not None:
            self._batch_counter.inc()

    @property
    def accel_tier(self):
        """``"numba"``/``"cc"`` when a compiled tier runs, else ``None``."""
        return None

    def train_batch(self, token_ids: np.ndarray, labels: np.ndarray):
        raise NotImplementedError


class ReferenceTrainingKernel(TrainingKernel):
    """The unmodified model path — the bit-exactness oracle."""

    name = "reference"

    def train_batch(self, token_ids: np.ndarray, labels: np.ndarray):
        self._count_batch()
        return self.model.train_batch(token_ids, labels)


# ----------------------------------------------------------------------
# The fused BPTT pass
# ----------------------------------------------------------------------

_TrainSteps = collections.namedtuple("_TrainSteps", "fwd bwd")


class _TrainBuffers:
    """Persistent work/cache arrays for one ``(batch, timesteps)`` shape."""

    def __init__(self, batch: int, timesteps: int, hidden: int, input_dim: int):
        shape_bt = (batch, timesteps, hidden)
        self.pre = np.empty((batch, 4 * hidden))
        self.z = np.empty((batch, 4 * hidden))
        self.x_proj = np.empty((batch, timesteps, 4 * hidden))
        self.i = np.empty(shape_bt)
        self.f = np.empty(shape_bt)
        self.o = np.empty(shape_bt)
        self.c_bar = np.empty(shape_bt)
        self.pre_c = np.empty(shape_bt)
        # cell[:, 0] / hidden[:, 0] are the zero initial states; the loop
        # only ever writes [:, 1:], so the zeros persist across batches.
        self.cell = np.zeros((batch, timesteps + 1, hidden))
        self.hidden = np.zeros((batch, timesteps + 1, hidden))
        self.d_pre = np.empty((batch, 4 * hidden))
        self.grad_h = np.empty((batch, hidden))
        self.grad_c = np.empty((batch, hidden))
        self.tmp_wx = np.empty((input_dim, 4 * hidden))
        self.tmp_wh = np.empty((hidden, 4 * hidden))
        self.inputs: np.ndarray | None = None


class FusedTrainingKernel(TrainingKernel):
    """One precompiled BPTT pass per batch over persistent buffers."""

    name = "fused"

    def __init__(self, model, telemetry=None):
        super().__init__(model, telemetry)
        self._delegate = False
        self._buffers: dict = {}
        self._steps = None
        self._tier = None
        lstm = model.lstm
        if lstm.cell_activation_name != "softsign":
            # The fused kernels hardcode the softsign deployment cell; the
            # tanh ablation (and any future activation) trains on reference.
            self.record_fallback(FALLBACK_UNSUPPORTED)
            self._delegate = True
            return
        self._steps, jit_reason, self._tier = _build_train_steps(lstm.hidden_size)
        if jit_reason is not None:
            # numba was the preferred tier; record why it was skipped even
            # when the C tier (or the NumPy rung) takes over.
            self.record_fallback(jit_reason)
        try:
            self._self_check()
        except AssertionError:
            if self._steps is not None:
                # Distrust the compiled tier first: the NumPy formulation
                # of the same arithmetic may still be exact on this host.
                self.record_fallback(FALLBACK_JIT_ERROR)
                self._steps = None
                self._tier = None
                try:
                    self._self_check()
                    return
                except AssertionError:
                    pass
            self.record_fallback(FALLBACK_SELF_CHECK)
            self._delegate = True

    @property
    def accel_tier(self):
        return None if self._delegate else self._tier

    def train_batch(self, token_ids: np.ndarray, labels: np.ndarray):
        self._count_batch()
        if self._delegate:
            return self.model.train_batch(token_ids, labels)
        return self._fused_train_batch(token_ids, labels)

    # -- build-time self-check -----------------------------------------

    def _self_check(self) -> None:
        """Compare the fused pass against ``model.train_batch`` bit for bit.

        Two probe shapes exercise the buffer management (including a
        reshape) and both sigmoid branches via random-sign pre-activations.
        Raises ``AssertionError`` on the first bit difference.
        """
        model = self.model
        vocab = model.embedding.vocab_size
        rng = np.random.default_rng(0x5EED)
        for batch, steps in ((5, 7), (3, 4)):
            tokens = rng.integers(0, vocab, size=(batch, steps))
            labels = (rng.random(batch) < 0.5).astype(np.float64)
            ref_loss, ref_grads = model.train_batch(tokens, labels)
            got_loss, got_grads = self._fused_train_batch(tokens, labels)
            assert got_loss == ref_loss, "loss mismatch"
            for key, ref in ref_grads.items():
                assert np.array_equal(got_grads[key], ref), f"{key} gradient mismatch"

    # -- the fused pass ------------------------------------------------

    def _buffers_for(self, batch: int, timesteps: int) -> _TrainBuffers:
        key = (batch, timesteps)
        buffers = self._buffers.get(key)
        if buffers is None:
            if len(self._buffers) > 8:
                self._buffers.clear()
            lstm = self.model.lstm
            buffers = _TrainBuffers(batch, timesteps, lstm.hidden_size, lstm.input_dim)
            self._buffers[key] = buffers
        return buffers

    def _fused_train_batch(self, token_ids: np.ndarray, labels: np.ndarray):
        # Mirrors SequenceClassifier.train_batch with the LSTM forward and
        # backward swapped for the fused pass; embedding, head, and loss run
        # the unchanged layer code (they are a rounding-error share of the
        # profile, and reusing them keeps their caches/validation intact).
        model = self.model
        embedded = model.embedding.forward(token_ids)
        final_hidden, buffers = self._forward(embedded)
        logits = model.head.forward(final_hidden).reshape(-1)
        loss, grad_logits = binary_cross_entropy_with_logits(logits, labels)

        grad_hidden, head_grads = model.head.backward(grad_logits.reshape(-1, 1))
        grad_embedded, lstm_grads = self._backward(buffers, grad_hidden)
        grad_table = model.embedding.backward(grad_embedded)

        grads = {
            "embedding/table": grad_table,
            "lstm/W_x": lstm_grads["W_x"],
            "lstm/W_h": lstm_grads["W_h"],
            "lstm/b": lstm_grads["b"],
            "head/W": head_grads["W"],
            "head/b": head_grads["b"],
        }
        return loss, grads

    def _forward(self, inputs: np.ndarray):
        lstm = self.model.lstm
        inputs = np.asarray(inputs, dtype=np.float64)
        batch, timesteps, _ = inputs.shape
        h = lstm.hidden_size
        buf = self._buffers_for(batch, timesteps)
        buf.inputs = inputs

        np.matmul(inputs, lstm.W_x, out=buf.x_proj)
        buf.x_proj += lstm.b

        pre, z = buf.pre, buf.z
        steps = self._steps
        for t in range(timesteps):
            np.matmul(buf.hidden[:, t, :], lstm.W_h, out=pre)
            pre += buf.x_proj[:, t, :]
            # The only transcendental: z = exp(-|pre|), from which both
            # sigmoid branches follow by exact arithmetic (see module doc).
            np.abs(pre, out=z)
            np.negative(z, out=z)
            np.exp(z, out=z)
            if steps is not None:
                steps.fwd(pre, z, buf.i, buf.f, buf.o, buf.c_bar, buf.pre_c,
                          buf.cell, buf.hidden, t)
            else:
                self._numpy_fwd_step(buf, h, t)
        return buf.hidden[:, timesteps, :], buf

    def _numpy_fwd_step(self, buf: _TrainBuffers, h: int, t: int) -> None:
        pre, z = buf.pre, buf.z
        denom = 1.0 + z
        sig = np.where(pre >= 0.0, 1.0 / denom, z / denom)
        buf.i[:, t] = sig[:, 0:h]
        buf.f[:, t] = sig[:, h : 2 * h]
        buf.o[:, t] = sig[:, 3 * h : 4 * h]
        p_c = pre[:, 2 * h : 3 * h]
        buf.pre_c[:, t] = p_c
        c_bar = p_c / (np.abs(p_c) + 1.0)
        buf.c_bar[:, t] = c_bar
        c_new = buf.f[:, t] * buf.cell[:, t] + buf.i[:, t] * c_bar
        buf.cell[:, t + 1] = c_new
        buf.hidden[:, t + 1] = buf.o[:, t] * (c_new / (np.abs(c_new) + 1.0))

    def _backward(self, buf: _TrainBuffers, grad_h_final: np.ndarray):
        lstm = self.model.lstm
        inputs = buf.inputs
        batch, timesteps, _ = inputs.shape
        h = lstm.hidden_size

        grad_W_x = np.zeros_like(lstm.W_x)
        grad_W_h = np.zeros_like(lstm.W_h)
        grad_b = np.zeros_like(lstm.b)
        # Every [:, t] slice is assigned below, so empty is safe.
        grad_inputs = np.empty_like(inputs)

        grad_h = buf.grad_h
        np.copyto(grad_h, grad_h_final)
        grad_c = buf.grad_c
        grad_c.fill(0.0)
        d_pre = buf.d_pre
        steps = self._steps

        for t in range(timesteps - 1, -1, -1):
            if steps is not None:
                steps.bwd(buf.i, buf.f, buf.o, buf.c_bar, buf.pre_c,
                          buf.cell, grad_h, grad_c, d_pre, t)
            else:
                self._numpy_bwd_step(buf, h, t)
            np.matmul(inputs[:, t].T, d_pre, out=buf.tmp_wx)
            grad_W_x += buf.tmp_wx
            np.matmul(buf.hidden[:, t].T, d_pre, out=buf.tmp_wh)
            grad_W_h += buf.tmp_wh
            grad_b += d_pre.sum(axis=0)
            grad_inputs[:, t] = d_pre @ lstm.W_x.T
            np.matmul(d_pre, lstm.W_h.T, out=grad_h)

        return grad_inputs, {"W_x": grad_W_x, "W_h": grad_W_h, "b": grad_b}

    def _numpy_bwd_step(self, buf: _TrainBuffers, h: int, t: int) -> None:
        grad_h, grad_c, d_pre = buf.grad_h, buf.grad_c, buf.d_pre
        c_t = buf.cell[:, t + 1]
        i_t = buf.i[:, t]
        f_t = buf.f[:, t]
        o_t = buf.o[:, t]
        den_c = np.abs(c_t) + 1.0
        gc = grad_c + grad_h * o_t * (1.0 / (den_c * den_c))
        grad_o = grad_h * (c_t / den_c)
        grad_i = gc * buf.c_bar[:, t]
        grad_c_bar = gc * i_t
        grad_f = gc * buf.cell[:, t]
        d_pre[:, 0:h] = grad_i * (i_t * (1.0 - i_t))
        d_pre[:, h : 2 * h] = grad_f * (f_t * (1.0 - f_t))
        den_p = np.abs(buf.pre_c[:, t]) + 1.0
        d_pre[:, 2 * h : 3 * h] = grad_c_bar * (1.0 / (den_p * den_p))
        d_pre[:, 3 * h : 4 * h] = grad_o * (o_t * (1.0 - o_t))
        np.multiply(gc, f_t, out=grad_c)


# ----------------------------------------------------------------------
# Acceleration ladder
# ----------------------------------------------------------------------


def _build_train_steps(hidden_size: int) -> tuple:
    """Compile the element-wise step pair through the acceleration ladder.

    Returns ``(steps_or_None, fallback_reason_or_None, tier_or_None)`` where
    ``steps`` carries ``fwd``/``bwd`` callables and ``tier`` is ``"numba"``
    or ``"cc"``.  ``None`` steps mean the caller runs the vectorised NumPy
    formulation of the same arithmetic.
    """
    steps, reason = _build_numba_train_steps(hidden_size)
    if steps is not None:
        return steps, None, "numba"
    cc_steps = _build_cc_train_steps(hidden_size)
    if cc_steps is not None:
        return cc_steps, reason, "cc"
    return None, reason, None


def _build_numba_train_steps(hidden_size: int) -> tuple:
    """numba-JIT the scalar step pair; ``(steps_or_None, reason_or_None)``.

    ``fastmath=False`` keeps LLVM from contracting the multiply-add chains
    into FMAs, so every float op is the correctly-rounded IEEE operation
    the reference computes.
    """
    try:
        import numba
    except Exception:
        return None, FALLBACK_NO_NUMBA
    try:
        H = hidden_size

        @numba.njit(cache=False, fastmath=False)
        def fwd(pre, z, gi, gf, go, cb, pc, cell, hidden, t):
            n = pre.shape[0]
            for row in range(n):
                for k in range(H):
                    p_i = pre[row, k]
                    p_f = pre[row, H + k]
                    p_c = pre[row, 2 * H + k]
                    p_o = pre[row, 3 * H + k]
                    z_i = z[row, k]
                    z_f = z[row, H + k]
                    z_o = z[row, 3 * H + k]
                    s_i = 1.0 / (1.0 + z_i) if p_i >= 0.0 else z_i / (1.0 + z_i)
                    s_f = 1.0 / (1.0 + z_f) if p_f >= 0.0 else z_f / (1.0 + z_f)
                    s_o = 1.0 / (1.0 + z_o) if p_o >= 0.0 else z_o / (1.0 + z_o)
                    c_b = p_c / (abs(p_c) + 1.0)
                    c_new = s_f * cell[row, t, k] + s_i * c_b
                    gi[row, t, k] = s_i
                    gf[row, t, k] = s_f
                    go[row, t, k] = s_o
                    cb[row, t, k] = c_b
                    pc[row, t, k] = p_c
                    cell[row, t + 1, k] = c_new
                    hidden[row, t + 1, k] = s_o * (c_new / (abs(c_new) + 1.0))

        @numba.njit(cache=False, fastmath=False)
        def bwd(gi, gf, go, cb, pc, cell, grad_h, grad_c, d_pre, t):
            n = grad_h.shape[0]
            for row in range(n):
                for k in range(H):
                    c_t = cell[row, t + 1, k]
                    i_t = gi[row, t, k]
                    f_t = gf[row, t, k]
                    o_t = go[row, t, k]
                    den_c = abs(c_t) + 1.0
                    gh = grad_h[row, k]
                    gc = grad_c[row, k] + (gh * o_t) * (1.0 / (den_c * den_c))
                    g_o = gh * (c_t / den_c)
                    g_i = gc * cb[row, t, k]
                    g_cb = gc * i_t
                    g_f = gc * cell[row, t, k]
                    d_pre[row, k] = g_i * (i_t * (1.0 - i_t))
                    d_pre[row, H + k] = g_f * (f_t * (1.0 - f_t))
                    den_p = abs(pc[row, t, k]) + 1.0
                    d_pre[row, 2 * H + k] = g_cb * (1.0 / (den_p * den_p))
                    d_pre[row, 3 * H + k] = g_o * (o_t * (1.0 - o_t))
                    grad_c[row, k] = gc * f_t

        probe_bt = np.zeros((1, 1, H))
        probe_state = np.zeros((1, 2, H))
        fwd(np.zeros((1, 4 * H)), np.ones((1, 4 * H)), probe_bt.copy(),
            probe_bt.copy(), probe_bt.copy(), probe_bt.copy(), probe_bt.copy(),
            probe_state.copy(), probe_state.copy(), 0)
        bwd(probe_bt.copy(), probe_bt.copy(), probe_bt.copy(), probe_bt.copy(),
            probe_bt.copy(), probe_state.copy(), np.zeros((1, H)),
            np.zeros((1, H)), np.empty((1, 4 * H)), 0)
        return _TrainSteps(fwd, bwd), None
    except Exception:
        return None, FALLBACK_JIT_ERROR


#: Compiled C step pairs, one per hidden size (compiling is ~100ms; the
#: generalization harness builds many trainers with identical shapes).
#: ``None`` caches failure.
_CC_TRAIN_CACHE: dict = {}


def _render_cc_train_steps(hidden_size: int) -> str:
    """The C step pair: the same op chains, one call per timestep.

    Gate/candidate caches are ``(B, T, H)`` and the states ``(B, T+1, H)``;
    the kernels take the base pointers plus ``t`` and handle the row stride
    internally, so the Python loop passes the persistent buffers untouched.
    Everything here is ``+ - * /``/``fabs`` — IEEE-exact however compiled —
    and the build flags pin ``-ffp-contract=off`` so the two multiply-add
    chains (cell update, recurrent grad accumulation) cannot be contracted
    into differently-rounded FMAs.
    """
    return f'''
#include <math.h>

void repro_train_fwd_step(const double *restrict pre, const double *restrict z,
                          double *restrict gi, double *restrict gf,
                          double *restrict go, double *restrict cb,
                          double *restrict pc, double *restrict cell,
                          double *restrict hidden, long n, long steps, long t)
{{
    const long H = {hidden_size};
    for (long row = 0; row < n; ++row) {{
        const double *restrict p = pre + row * 4 * H;
        const double *restrict zz = z + row * 4 * H;
        double *restrict gir = gi + (row * steps + t) * H;
        double *restrict gfr = gf + (row * steps + t) * H;
        double *restrict gor = go + (row * steps + t) * H;
        double *restrict cbr = cb + (row * steps + t) * H;
        double *restrict pcr = pc + (row * steps + t) * H;
        const double *restrict cprev = cell + (row * (steps + 1) + t) * H;
        double *restrict cnext = cell + (row * (steps + 1) + t + 1) * H;
        double *restrict hnext = hidden + (row * (steps + 1) + t + 1) * H;
        for (long k = 0; k < H; ++k) {{
            double z_i = zz[k], z_f = zz[H + k], z_o = zz[3 * H + k];
            double s_i = (p[k] >= 0.0) ? 1.0 / (1.0 + z_i) : z_i / (1.0 + z_i);
            double s_f = (p[H + k] >= 0.0) ? 1.0 / (1.0 + z_f) : z_f / (1.0 + z_f);
            double s_o = (p[3 * H + k] >= 0.0) ? 1.0 / (1.0 + z_o) : z_o / (1.0 + z_o);
            double p_c = p[2 * H + k];
            double c_b = p_c / (fabs(p_c) + 1.0);
            double c_new = s_f * cprev[k] + s_i * c_b;
            gir[k] = s_i;
            gfr[k] = s_f;
            gor[k] = s_o;
            cbr[k] = c_b;
            pcr[k] = p_c;
            cnext[k] = c_new;
            hnext[k] = s_o * (c_new / (fabs(c_new) + 1.0));
        }}
    }}
}}

void repro_train_bwd_step(const double *restrict gi, const double *restrict gf,
                          const double *restrict go, const double *restrict cb,
                          const double *restrict pc, const double *restrict cell,
                          const double *restrict grad_h, double *restrict grad_c,
                          double *restrict d_pre, long n, long steps, long t)
{{
    const long H = {hidden_size};
    for (long row = 0; row < n; ++row) {{
        const double *restrict gir = gi + (row * steps + t) * H;
        const double *restrict gfr = gf + (row * steps + t) * H;
        const double *restrict gor = go + (row * steps + t) * H;
        const double *restrict cbr = cb + (row * steps + t) * H;
        const double *restrict pcr = pc + (row * steps + t) * H;
        const double *restrict cprev = cell + (row * (steps + 1) + t) * H;
        const double *restrict cnext = cell + (row * (steps + 1) + t + 1) * H;
        const double *restrict ghr = grad_h + row * H;
        double *restrict gcr = grad_c + row * H;
        double *restrict dp = d_pre + row * 4 * H;
        for (long k = 0; k < H; ++k) {{
            double c_t = cnext[k];
            double i_t = gir[k], f_t = gfr[k], o_t = gor[k];
            double den_c = fabs(c_t) + 1.0;
            double gh = ghr[k];
            double gc = gcr[k] + (gh * o_t) * (1.0 / (den_c * den_c));
            double g_o = gh * (c_t / den_c);
            double g_i = gc * cbr[k];
            double g_cb = gc * i_t;
            double g_f = gc * cprev[k];
            dp[k] = g_i * (i_t * (1.0 - i_t));
            dp[H + k] = g_f * (f_t * (1.0 - f_t));
            double den_p = fabs(pcr[k]) + 1.0;
            dp[2 * H + k] = g_cb * (1.0 / (den_p * den_p));
            dp[3 * H + k] = g_o * (o_t * (1.0 - o_t));
            gcr[k] = gc * f_t;
        }}
    }}
}}
'''


def _build_cc_train_steps(hidden_size: int):
    """Compile the C step pair with the system compiler, or ``None``.

    Built once per hidden size into a private temp directory and kept
    loaded for the process lifetime.  ``-ffp-contract=off`` is mandatory
    at every rung (see :func:`_render_cc_train_steps`);
    ``-fno-math-errno -fno-trapping-math`` only drop errno stores and
    FP-status ordering (``fabs`` sets neither) so results stay IEEE-exact;
    ``-march=native`` is attempted first and dropped if rejected.  Any
    failure — no compiler, a compile error, a load error — returns ``None``
    and the caller falls through to the NumPy rung.
    """
    if hidden_size in _CC_TRAIN_CACHE:
        return _CC_TRAIN_CACHE[hidden_size]
    steps = None
    try:
        import ctypes
        import shutil
        import subprocess
        import tempfile

        compiler = shutil.which("cc") or shutil.which("gcc")
        if compiler is not None:
            build_dir = tempfile.mkdtemp(prefix="repro-train-")
            source = f"{build_dir}/train_steps.c"
            library = f"{build_dir}/train_steps.so"
            with open(source, "w") as handle:
                handle.write(_render_cc_train_steps(hidden_size))
            base = ["-fPIC", "-shared", "-o", library, source, "-lm"]
            exact = ["-ffp-contract=off", "-fno-math-errno", "-fno-trapping-math"]
            for flags in (
                ["-O3", "-march=native", *exact],
                ["-O3", *exact],
                ["-O2", "-ffp-contract=off"],
            ):
                result = subprocess.run(
                    [compiler, *flags, *base], capture_output=True, timeout=120
                )
                if result.returncode == 0:
                    break
            else:
                result = None
            if result is not None and result.returncode == 0:
                lib = ctypes.CDLL(library)
                raw_fwd = lib.repro_train_fwd_step
                raw_fwd.restype = None
                raw_fwd.argtypes = [ctypes.c_void_p] * 9 + [ctypes.c_long] * 3
                raw_bwd = lib.repro_train_bwd_step
                raw_bwd.restype = None
                raw_bwd.argtypes = [ctypes.c_void_p] * 9 + [ctypes.c_long] * 3

                def fwd(pre, z, gi, gf, go, cb, pc, cell, hidden, t,
                        _raw=raw_fwd):
                    _raw(pre.ctypes.data, z.ctypes.data, gi.ctypes.data,
                         gf.ctypes.data, go.ctypes.data, cb.ctypes.data,
                         pc.ctypes.data, cell.ctypes.data, hidden.ctypes.data,
                         gi.shape[0], gi.shape[1], t)

                def bwd(gi, gf, go, cb, pc, cell, grad_h, grad_c, d_pre, t,
                        _raw=raw_bwd):
                    _raw(gi.ctypes.data, gf.ctypes.data, go.ctypes.data,
                         cb.ctypes.data, pc.ctypes.data, cell.ctypes.data,
                         grad_h.ctypes.data, grad_c.ctypes.data,
                         d_pre.ctypes.data, gi.shape[0], gi.shape[1], t)

                H = hidden_size
                probe_bt = np.zeros((1, 1, H))
                probe_state = np.zeros((1, 2, H))
                fwd(np.zeros((1, 4 * H)), np.ones((1, 4 * H)), probe_bt.copy(),
                    probe_bt.copy(), probe_bt.copy(), probe_bt.copy(),
                    probe_bt.copy(), probe_state.copy(), probe_state.copy(), 0)
                bwd(probe_bt.copy(), probe_bt.copy(), probe_bt.copy(),
                    probe_bt.copy(), probe_bt.copy(), probe_state.copy(),
                    np.zeros((1, H)), np.zeros((1, H)), np.empty((1, 4 * H)), 0)
                steps = _TrainSteps(fwd, bwd)
    except Exception:
        steps = None
    _CC_TRAIN_CACHE[hidden_size] = steps
    return steps


register_training_backend("reference", ReferenceTrainingKernel)
register_training_backend("fused", FusedTrainingKernel)
