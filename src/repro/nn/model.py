"""The paper's classification model: Embedding → LSTM → Dense → sigmoid.

Section IV fixes the architecture: embedding dimension 8, hidden size 32,
and a single-unit fully-connected head, for 7,472 parameters in the
embedding+LSTM stack (2,224 + 5,248) plus 33 in the head.  With the default
vocabulary of 278 tokens this class reproduces those counts exactly
(verified by a unit test).
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import sigmoid
from repro.nn.dense import Dense
from repro.nn.embedding import Embedding
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.lstm import LSTM

#: Architecture constants from the paper's experimental setup (Section IV).
PAPER_VOCAB_SIZE = 278
PAPER_EMBEDDING_DIM = 8
PAPER_HIDDEN_SIZE = 32


class SequenceClassifier:
    """Binary sequence classifier matching the paper's offline model.

    Parameters
    ----------
    vocab_size:
        Number of distinct sequence items ``M``.
    embedding_dim:
        Embedding size ``O``.
    hidden_size:
        LSTM hidden size ``H``.
    cell_activation:
        Squashing activation for the LSTM (``"softsign"`` by default, to
        match the deployed FPGA arithmetic; ``"tanh"`` for the ablation).
    seed:
        Seed for reproducible initialisation.
    """

    def __init__(
        self,
        vocab_size: int = PAPER_VOCAB_SIZE,
        embedding_dim: int = PAPER_EMBEDDING_DIM,
        hidden_size: int = PAPER_HIDDEN_SIZE,
        cell_activation: str = "softsign",
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        self.embedding = Embedding(vocab_size, embedding_dim, rng)
        self.lstm = LSTM(embedding_dim, hidden_size, rng, cell_activation=cell_activation)
        self.head = Dense(hidden_size, 1, rng)

    @property
    def parameter_count(self) -> int:
        """Total trainable parameters across all three layers."""
        return (
            self.embedding.parameter_count
            + self.lstm.parameter_count
            + self.head.parameter_count
        )

    def forward_logits(self, token_ids: np.ndarray) -> np.ndarray:
        """Compute raw (pre-sigmoid) scores for a batch of sequences.

        Parameters
        ----------
        token_ids:
            Integer array of shape ``(batch, timesteps)``.

        Returns
        -------
        numpy.ndarray
            Logits of shape ``(batch,)``.
        """
        embedded = self.embedding.forward(token_ids)
        final_hidden = self.lstm.forward(embedded)
        return self.head.forward(final_hidden).reshape(-1)

    def predict_proba(self, token_ids: np.ndarray) -> np.ndarray:
        """Ransomware probability per sequence, shape ``(batch,)``."""
        return sigmoid(self.forward_logits(token_ids))

    def predict(self, token_ids: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard binary predictions at the given probability threshold."""
        return (self.predict_proba(token_ids) >= threshold).astype(int)

    def train_batch(self, token_ids: np.ndarray, labels: np.ndarray):
        """Run one forward/backward pass and return ``(loss, grads)``.

        The gradients are keyed for the optimiser: ``embedding/table``,
        ``lstm/W_x``, ``lstm/W_h``, ``lstm/b``, ``head/W``, ``head/b``.
        The caller applies them via :meth:`parameters`.
        """
        logits = self.forward_logits(token_ids)
        loss, grad_logits = binary_cross_entropy_with_logits(logits, labels)

        grad_hidden, head_grads = self.head.backward(grad_logits.reshape(-1, 1))
        grad_embedded, lstm_grads = self.lstm.backward(grad_hidden)
        grad_table = self.embedding.backward(grad_embedded)

        grads = {
            "embedding/table": grad_table,
            "lstm/W_x": lstm_grads["W_x"],
            "lstm/W_h": lstm_grads["W_h"],
            "lstm/b": lstm_grads["b"],
            "head/W": head_grads["W"],
            "head/b": head_grads["b"],
        }
        return loss, grads

    def parameters(self) -> dict:
        """Live views of every parameter array, keyed like the gradients.

        Optimisers mutate these arrays in place, so the returned dict must
        expose the layer-owned arrays themselves, not copies.
        """
        return {
            "embedding/table": self.embedding.weights,
            "lstm/W_x": self.lstm.W_x,
            "lstm/W_h": self.lstm.W_h,
            "lstm/b": self.lstm.b,
            "head/W": self.head.W,
            "head/b": self.head.b,
        }

    def get_weights(self) -> list:
        """All parameter arrays in export order (TensorFlow-style).

        Order: embedding table, LSTM ``W_x``, LSTM ``W_h``, LSTM ``b``,
        head ``W``, head ``b``.
        """
        return self.embedding.get_weights() + self.lstm.get_weights() + self.head.get_weights()

    def set_weights(self, weights: list) -> None:
        """Load the six arrays produced by :meth:`get_weights`."""
        if len(weights) != 6:
            raise ValueError(f"expected 6 weight arrays, got {len(weights)}")
        self.embedding.set_weights(weights[0:1])
        self.lstm.set_weights(weights[1:4])
        self.head.set_weights(weights[4:6])
