"""From-scratch NumPy deep-learning substrate.

Provides everything the paper's *offline training* stage needs — embedding,
LSTM and dense layers with exact gradients, losses, optimisers, a training
loop with convergence tracking (with bit-exact fused training kernels and a
content-addressed model cache), metrics, and the text-file weight export the
CSD host program ingests.
"""

from repro.nn.cache import ModelCache
from repro.nn.dense import Dense
from repro.nn.embedding import Embedding
from repro.nn.kernels import (
    DEFAULT_TRAIN_BACKEND,
    available_training_backends,
    register_training_backend,
    resolve_training_backend,
)
from repro.nn.lstm import LSTM
from repro.nn.metrics import (
    ConfusionMatrix,
    auc,
    classification_report,
    confusion_matrix,
    roc_curve,
    threshold_sweep,
)
from repro.nn.model import (
    PAPER_EMBEDDING_DIM,
    PAPER_HIDDEN_SIZE,
    PAPER_VOCAB_SIZE,
    SequenceClassifier,
)
from repro.nn.optimizers import SGD, Adam, clip_gradients
from repro.nn.serialization import dump_weights, load_into_model, load_weights
from repro.nn.trainer import ConvergenceHistory, EpochRecord, Trainer, TrainingConfig

__all__ = [
    "Adam",
    "ConfusionMatrix",
    "ConvergenceHistory",
    "DEFAULT_TRAIN_BACKEND",
    "Dense",
    "Embedding",
    "EpochRecord",
    "LSTM",
    "ModelCache",
    "PAPER_EMBEDDING_DIM",
    "PAPER_HIDDEN_SIZE",
    "PAPER_VOCAB_SIZE",
    "SGD",
    "SequenceClassifier",
    "Trainer",
    "TrainingConfig",
    "auc",
    "available_training_backends",
    "classification_report",
    "clip_gradients",
    "confusion_matrix",
    "dump_weights",
    "register_training_backend",
    "resolve_training_backend",
    "load_into_model",
    "load_weights",
    "roc_curve",
    "threshold_sweep",
]
