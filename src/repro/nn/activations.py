"""Floating-point activation functions and their derivatives.

The offline training procedure (paper Section III-A) runs in ordinary
floating point; the deployed FPGA model replaces ``tanh`` with ``softsign``
(Section III-D).  To keep the trained weights consistent with what the
hardware executes, the model trains with softsign as well — both the
forward value *and* the gradient are exact here, so no straight-through
tricks are needed.

Each activation is exposed as a function plus a ``*_grad`` companion that
takes the *pre-activation* input.  Gradients written in terms of the input
(rather than the output) keep the BPTT code in :mod:`repro.nn.lstm` simple.
"""

from __future__ import annotations

import numpy as np


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def sigmoid_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of sigmoid w.r.t. its input."""
    s = sigmoid(x)
    return s * (1.0 - s)


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent (baseline activation the paper replaces)."""
    return np.tanh(x)


def tanh_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of tanh w.r.t. its input."""
    t = np.tanh(x)
    return 1.0 - t * t


def softsign(x: np.ndarray) -> np.ndarray:
    """Softsign: ``x / (|x| + 1)`` — the paper's tanh replacement."""
    return x / (np.abs(x) + 1.0)


def softsign_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of softsign: ``1 / (|x| + 1)**2``."""
    denominator = np.abs(x) + 1.0
    return 1.0 / (denominator * denominator)


#: Registry mapping activation names to (function, gradient) pairs.
ACTIVATIONS = {
    "sigmoid": (sigmoid, sigmoid_grad),
    "tanh": (tanh, tanh_grad),
    "softsign": (softsign, softsign_grad),
}


def get_activation(name: str):
    """Look up an activation pair by name.

    Returns
    -------
    tuple
        ``(function, gradient_function)`` where the gradient is taken with
        respect to the pre-activation input.
    """
    try:
        return ACTIVATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; expected one of {sorted(ACTIVATIONS)}"
        ) from None
