"""Trainable embedding layer.

The paper's model front-end maps each item of a sequence (an API-call token
in the ransomware use case) to a dense vector: "the embedding for the
current item ... is obtained by taking the dot product of the one-hot vector
of the item and the M x O matrix" (Section III-B).  During training the
one-hot product is of course implemented as a table lookup, and the gradient
is a scatter-add into the looked-up rows.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import uniform_embedding


class Embedding:
    """Token-id → dense-vector lookup table with gradient support.

    Parameters
    ----------
    vocab_size:
        Number of distinct tokens ``M`` (the paper's ransomware model uses
        278).
    embedding_dim:
        Output dimensionality ``O`` (the paper uses 8).
    rng:
        NumPy random generator used for initialisation.
    """

    def __init__(self, vocab_size: int, embedding_dim: int, rng: np.random.Generator):
        if vocab_size <= 0 or embedding_dim <= 0:
            raise ValueError(
                f"vocab_size and embedding_dim must be positive, got "
                f"{vocab_size} and {embedding_dim}"
            )
        self.vocab_size = vocab_size
        self.embedding_dim = embedding_dim
        self.weights = uniform_embedding(rng, (vocab_size, embedding_dim))
        self._cached_ids: np.ndarray | None = None

    @property
    def parameter_count(self) -> int:
        """Total number of trainable parameters (``M * O``)."""
        return self.weights.size

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        """Embed a batch of sequences.

        Parameters
        ----------
        token_ids:
            Integer array of shape ``(batch, timesteps)`` with values in
            ``[0, vocab_size)``.

        Returns
        -------
        numpy.ndarray
            Embeddings of shape ``(batch, timesteps, embedding_dim)``.
        """
        token_ids = np.asarray(token_ids)
        if token_ids.min(initial=0) < 0 or token_ids.max(initial=0) >= self.vocab_size:
            raise ValueError(
                f"token ids must be in [0, {self.vocab_size}), got range "
                f"[{token_ids.min()}, {token_ids.max()}]"
            )
        self._cached_ids = token_ids
        return self.weights[token_ids]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Accumulate the gradient of the loss w.r.t. the embedding table.

        Parameters
        ----------
        grad_output:
            Gradient of shape ``(batch, timesteps, embedding_dim)`` matching
            the last :meth:`forward` call.

        Returns
        -------
        numpy.ndarray
            Gradient w.r.t. ``self.weights`` (shape ``(M, O)``).
        """
        if self._cached_ids is None:
            raise RuntimeError("backward called before forward")
        grad_weights = np.zeros_like(self.weights)
        flat_ids = self._cached_ids.reshape(-1)
        flat_grads = grad_output.reshape(-1, self.embedding_dim)
        np.add.at(grad_weights, flat_ids, flat_grads)
        return grad_weights

    def get_weights(self) -> list:
        """Return the parameter arrays, TensorFlow ``get_weights()``-style."""
        return [self.weights.copy()]

    def set_weights(self, weights: list) -> None:
        """Load parameter arrays previously produced by :meth:`get_weights`."""
        (table,) = weights
        if table.shape != self.weights.shape:
            raise ValueError(
                f"expected embedding shape {self.weights.shape}, got {table.shape}"
            )
        self.weights = np.asarray(table, dtype=np.float64).copy()
