"""Loss functions for binary sequence classification.

The ransomware detector is a binary classifier, so binary cross-entropy on
sigmoid logits is the natural (and numerically careful) choice.  The loss
is implemented directly on *logits* so the sigmoid and the log never cancel
catastrophically.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import sigmoid


def binary_cross_entropy_with_logits(logits: np.ndarray, labels: np.ndarray):
    """Mean BCE loss computed stably from logits.

    Uses the identity ``BCE = max(z, 0) - z*y + log(1 + exp(-|z|))`` which
    never exponentiates a large positive number.

    Parameters
    ----------
    logits:
        Raw scores of shape ``(batch,)`` or ``(batch, 1)``.
    labels:
        Binary targets with the same leading shape, values in {0, 1}.

    Returns
    -------
    tuple
        ``(loss, grad_logits)`` — the scalar mean loss and its gradient
        w.r.t. the logits (same shape as ``logits``).
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64).reshape(logits.shape)
    if logits.size == 0:
        raise ValueError("cannot compute BCE on an empty batch")

    losses = np.maximum(logits, 0.0) - logits * labels + np.log1p(np.exp(-np.abs(logits)))
    loss = float(losses.mean())
    grad = (sigmoid(logits) - labels) / logits.shape[0]
    return loss, grad
