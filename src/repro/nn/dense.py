"""Fully-connected classification head.

The paper maps the LSTM's final hidden state to a binary classification
with a single fully-connected layer — "32 weights and one bias term"
(Section IV) — followed by a sigmoid.  The layer here is general (any
``units``) but the paper's configuration is ``Dense(32 -> 1)``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import glorot_uniform, zeros


class Dense:
    """Affine layer ``y = x @ W + b`` with gradient support.

    Parameters
    ----------
    input_dim:
        Incoming feature size (the LSTM hidden size, 32 in the paper).
    units:
        Output size (1 for the paper's binary head).
    rng:
        NumPy random generator used for initialisation.
    """

    def __init__(self, input_dim: int, units: int, rng: np.random.Generator):
        if input_dim <= 0 or units <= 0:
            raise ValueError(
                f"input_dim and units must be positive, got {input_dim} and {units}"
            )
        self.input_dim = input_dim
        self.units = units
        self.W = glorot_uniform(rng, (input_dim, units))
        self.b = zeros((units,))
        self._cached_input: np.ndarray | None = None

    @property
    def parameter_count(self) -> int:
        """Total trainable parameters: ``input_dim * units + units``."""
        return self.W.size + self.b.size

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Apply the affine transform to a ``(batch, input_dim)`` array."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2 or inputs.shape[1] != self.input_dim:
            raise ValueError(
                f"expected inputs of shape (B, {self.input_dim}), got {inputs.shape}"
            )
        self._cached_input = inputs
        return inputs @ self.W + self.b

    def backward(self, grad_output: np.ndarray):
        """Backpropagate a gradient of shape ``(batch, units)``.

        Returns
        -------
        tuple
            ``(grad_inputs, grads)`` with ``grads`` keyed ``"W"``/``"b"``.
        """
        if self._cached_input is None:
            raise RuntimeError("backward called before forward")
        grad_W = self._cached_input.T @ grad_output
        grad_b = grad_output.sum(axis=0)
        grad_inputs = grad_output @ self.W.T
        return grad_inputs, {"W": grad_W, "b": grad_b}

    def get_weights(self) -> list:
        """Return ``[W, b]``."""
        return [self.W.copy(), self.b.copy()]

    def set_weights(self, weights: list) -> None:
        """Load ``[W, b]`` arrays produced by :meth:`get_weights`."""
        w, b = weights
        if np.shape(w) != self.W.shape or np.shape(b) != self.b.shape:
            raise ValueError(
                f"expected shapes {(self.W.shape, self.b.shape)}, got "
                f"{(np.shape(w), np.shape(b))}"
            )
        self.W = np.asarray(w, dtype=np.float64).copy()
        self.b = np.asarray(b, dtype=np.float64).copy()
