"""Binary classification metrics (paper Section IV reporting).

The paper reports accuracy, precision, recall, and F1 for the ransomware
detector.  These are computed from an explicit confusion matrix so tests
and benchmarks can inspect the raw counts too.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion counts with the positive class = ransomware."""

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    @property
    def total(self) -> int:
        return (
            self.true_positive
            + self.false_positive
            + self.true_negative
            + self.false_negative
        )

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            return 0.0
        return (self.true_positive + self.true_negative) / self.total

    @property
    def precision(self) -> float:
        predicted_positive = self.true_positive + self.false_positive
        if predicted_positive == 0:
            return 0.0
        return self.true_positive / predicted_positive

    @property
    def recall(self) -> float:
        actual_positive = self.true_positive + self.false_negative
        if actual_positive == 0:
            return 0.0
        return self.true_positive / actual_positive

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if p + r == 0.0:
            return 0.0
        return 2.0 * p * r / (p + r)

    def as_dict(self) -> dict:
        """Return the four headline metrics as a plain dict."""
        return {
            "accuracy": self.accuracy,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray) -> ConfusionMatrix:
    """Build a :class:`ConfusionMatrix` from binary prediction/label arrays.

    Parameters
    ----------
    predictions, labels:
        Arrays of equal length containing values in {0, 1}.
    """
    predictions = np.asarray(predictions).reshape(-1).astype(int)
    labels = np.asarray(labels).reshape(-1).astype(int)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"predictions and labels must match: {predictions.shape} vs {labels.shape}"
        )
    for name, arr in (("predictions", predictions), ("labels", labels)):
        bad = set(np.unique(arr)) - {0, 1}
        if bad:
            raise ValueError(f"{name} must be binary, found values {sorted(bad)}")
    tp = int(np.sum((predictions == 1) & (labels == 1)))
    fp = int(np.sum((predictions == 1) & (labels == 0)))
    tn = int(np.sum((predictions == 0) & (labels == 0)))
    fn = int(np.sum((predictions == 0) & (labels == 1)))
    return ConfusionMatrix(tp, fp, tn, fn)


def classification_report(predictions: np.ndarray, labels: np.ndarray) -> dict:
    """Convenience wrapper returning the four headline metrics."""
    return confusion_matrix(predictions, labels).as_dict()


def roc_curve(scores: np.ndarray, labels: np.ndarray) -> tuple:
    """ROC points from continuous scores.

    Returns ``(fpr, tpr, thresholds)`` arrays ordered from the most
    permissive threshold to the strictest, with the conventional (0,0)
    and (1,1) endpoints included.

    Parameters
    ----------
    scores:
        Ransomware probabilities (higher = more positive).
    labels:
        Binary ground truth.
    """
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels).reshape(-1).astype(int)
    if scores.shape != labels.shape:
        raise ValueError(
            f"scores and labels must match: {scores.shape} vs {labels.shape}"
        )
    positives = int(labels.sum())
    negatives = labels.size - positives
    if positives == 0 or negatives == 0:
        raise ValueError("ROC needs both classes present")

    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    tps = np.cumsum(sorted_labels)
    fps = np.cumsum(1 - sorted_labels)
    # Collapse ties: keep the last point of each distinct score.
    distinct = np.r_[np.flatnonzero(np.diff(scores[order])), scores.size - 1]
    tpr = np.r_[0.0, tps[distinct] / positives]
    fpr = np.r_[0.0, fps[distinct] / negatives]
    thresholds = np.r_[np.inf, scores[order][distinct]]
    return fpr, tpr, thresholds


def auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve (trapezoidal)."""
    fpr, tpr, _ = roc_curve(scores, labels)
    # np.trapz was renamed to np.trapezoid in NumPy 2.0.
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    return float(trapezoid(tpr, fpr))


def threshold_sweep(scores: np.ndarray, labels: np.ndarray, thresholds) -> list:
    """Metrics at each candidate decision threshold.

    Returns a list of ``(threshold, ConfusionMatrix)`` pairs — the data
    behind the detector's operating-point choice (detection threshold vs
    false-quarantine rate).
    """
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels).reshape(-1).astype(int)
    results = []
    for threshold in thresholds:
        predictions = (scores >= threshold).astype(int)
        results.append((float(threshold), confusion_matrix(predictions, labels)))
    return results
