"""Weight initialisation schemes for the from-scratch NN substrate.

The schemes mirror the defaults the paper's TensorFlow training notebook
would have used: Glorot-uniform for input-to-hidden weights, orthogonal for
recurrent weights, zeros for biases, and a small uniform range for
embeddings (Keras' ``Embedding`` default).
"""

from __future__ import annotations

import numpy as np


def glorot_uniform(rng: np.random.Generator, shape: tuple) -> np.ndarray:
    """Glorot/Xavier uniform initialisation.

    Samples from ``U(-limit, limit)`` with ``limit = sqrt(6 / (fan_in +
    fan_out))``.  For 2-D shapes ``(rows, cols)`` fan-in is ``cols`` and
    fan-out is ``rows`` (row-major weight matrices acting on column inputs).
    """
    if len(shape) != 2:
        raise ValueError(f"glorot_uniform expects a 2-D shape, got {shape}")
    fan_out, fan_in = shape
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(rng: np.random.Generator, shape: tuple) -> np.ndarray:
    """Orthogonal initialisation (Saxe et al. 2014) for recurrent weights.

    Produces a matrix with orthonormal rows (or columns, whichever is
    smaller), which keeps the recurrent Jacobian's spectrum near 1 and so
    stabilises gradients over the 100-step sequences used here.
    """
    if len(shape) != 2:
        raise ValueError(f"orthogonal expects a 2-D shape, got {shape}")
    rows, cols = shape
    flat = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    # Sign-correct so the distribution is uniform over orthogonal matrices.
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return q[:rows, :cols]


def zeros(shape: tuple) -> np.ndarray:
    """All-zeros initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)


def uniform_embedding(rng: np.random.Generator, shape: tuple, scale: float = 0.05) -> np.ndarray:
    """Small uniform initialisation for embedding tables, ``U(-scale, scale)``."""
    return rng.uniform(-scale, scale, size=shape)
