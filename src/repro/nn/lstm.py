"""From-scratch LSTM layer with full backpropagation through time.

Implements the cell the paper describes in Section III-A:

.. math::

    i_t &= \\sigma(W_i [h_{t-1}, x_t] + b_i) \\\\
    f_t &= \\sigma(W_f [h_{t-1}, x_t] + b_f) \\\\
    o_t &= \\sigma(W_o [h_{t-1}, x_t] + b_o) \\\\
    C'_t &= g(W_{C'} [h_{t-1}, x_t] + b_{C'}) \\\\
    C_t &= f_t * C_{t-1} + i_t * C'_t \\\\
    h_t &= o_t * g(C_t)

where ``g`` is ``tanh`` in the textbook cell and ``softsign`` in the
deployed FPGA model (Section III-D).  The activation is configurable so the
softsign-vs-tanh ablation can train both variants.

Weight layout follows the TensorFlow/Keras convention the paper's export
path assumes ("``get_weights()`` ... returns three Numpy arrays consisting
of the weights W for x_t, the W for h_{t-1}, and the related b terms"):

* ``W_x`` — shape ``(input_dim, 4*hidden)``;
* ``W_h`` — shape ``(hidden, 4*hidden)``;
* ``b``   — shape ``(4*hidden,)``;

with gates packed in Keras order ``[i, f, C', o]`` along the last axis.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.nn.activations import get_activation, sigmoid
from repro.nn.initializers import glorot_uniform, orthogonal, zeros

#: Gate packing order along the 4H axis (Keras convention).
GATE_ORDER = ("i", "f", "c", "o")


@dataclasses.dataclass
class _LSTMCache:
    """Intermediate values saved by the forward pass for BPTT."""

    inputs: np.ndarray        # (B, T, input_dim)
    i: np.ndarray             # (B, T, H) gate activations
    f: np.ndarray
    o: np.ndarray
    c_bar: np.ndarray         # candidate values C'_t
    pre_i: np.ndarray         # pre-activation values, for exact gradients
    pre_f: np.ndarray
    pre_o: np.ndarray
    pre_c_bar: np.ndarray
    cell: np.ndarray          # (B, T+1, H): C_0 .. C_T
    hidden: np.ndarray        # (B, T+1, H): h_0 .. h_T


class LSTM:
    """Single-layer LSTM returning the final hidden state.

    Parameters
    ----------
    input_dim:
        Size of each timestep's input vector (the embedding dim ``O``).
    hidden_size:
        Size ``H`` of the hidden/cell state (the paper uses 32).
    cell_activation:
        Name of the squashing activation ``g`` applied to the candidate
        values and the cell state: ``"softsign"`` (paper's deployment,
        the default) or ``"tanh"`` (textbook cell, for the ablation).
    rng:
        NumPy random generator used for initialisation.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_size: int,
        rng: np.random.Generator,
        cell_activation: str = "softsign",
    ):
        if input_dim <= 0 or hidden_size <= 0:
            raise ValueError(
                f"input_dim and hidden_size must be positive, got "
                f"{input_dim} and {hidden_size}"
            )
        self.input_dim = input_dim
        self.hidden_size = hidden_size
        self.cell_activation_name = cell_activation
        self._g, self._g_grad = get_activation(cell_activation)

        four_h = 4 * hidden_size
        self.W_x = np.concatenate(
            [glorot_uniform(rng, (input_dim, hidden_size)) for _ in GATE_ORDER], axis=1
        )
        self.W_h = np.concatenate(
            [orthogonal(rng, (hidden_size, hidden_size)) for _ in GATE_ORDER], axis=1
        )
        self.b = zeros((four_h,))
        # Forget-gate bias of 1.0 is the standard trick for long sequences
        # (Jozefowicz et al. 2015); it speeds convergence on length-100 API
        # call sequences considerably.
        self.b[hidden_size : 2 * hidden_size] = 1.0

        self._cache: _LSTMCache | None = None

    @property
    def parameter_count(self) -> int:
        """Total trainable parameters: ``4*(H*(input_dim + H) + H)``."""
        return self.W_x.size + self.W_h.size + self.b.size

    def _split_gates(self, packed: np.ndarray):
        """Split a ``(..., 4H)`` array into the four gate slabs."""
        h = self.hidden_size
        return (
            packed[..., 0:h],
            packed[..., h : 2 * h],
            packed[..., 2 * h : 3 * h],
            packed[..., 3 * h : 4 * h],
        )

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Run the sequence through the cell.

        Parameters
        ----------
        inputs:
            Array of shape ``(batch, timesteps, input_dim)``.

        Returns
        -------
        numpy.ndarray
            Final hidden state ``h_T`` of shape ``(batch, hidden_size)``.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 3 or inputs.shape[2] != self.input_dim:
            raise ValueError(
                f"expected inputs of shape (B, T, {self.input_dim}), got {inputs.shape}"
            )
        batch, timesteps, _ = inputs.shape
        h = self.hidden_size

        gate_i = np.empty((batch, timesteps, h))
        gate_f = np.empty((batch, timesteps, h))
        gate_o = np.empty((batch, timesteps, h))
        c_bar = np.empty((batch, timesteps, h))
        pre_i = np.empty((batch, timesteps, h))
        pre_f = np.empty((batch, timesteps, h))
        pre_o = np.empty((batch, timesteps, h))
        pre_c = np.empty((batch, timesteps, h))
        cell = np.zeros((batch, timesteps + 1, h))
        hidden = np.zeros((batch, timesteps + 1, h))

        # Hoist the input-side affine transform out of the timestep loop:
        # it has no recurrent dependency, so all T matmuls batch into one.
        x_proj = inputs @ self.W_x + self.b  # (B, T, 4H)

        for t in range(timesteps):
            pre = x_proj[:, t, :] + hidden[:, t, :] @ self.W_h
            p_i, p_f, p_c, p_o = self._split_gates(pre)
            pre_i[:, t] = p_i
            pre_f[:, t] = p_f
            pre_c[:, t] = p_c
            pre_o[:, t] = p_o
            gate_i[:, t] = sigmoid(p_i)
            gate_f[:, t] = sigmoid(p_f)
            gate_o[:, t] = sigmoid(p_o)
            c_bar[:, t] = self._g(p_c)
            cell[:, t + 1] = gate_f[:, t] * cell[:, t] + gate_i[:, t] * c_bar[:, t]
            hidden[:, t + 1] = gate_o[:, t] * self._g(cell[:, t + 1])

        self._cache = _LSTMCache(
            inputs=inputs,
            i=gate_i,
            f=gate_f,
            o=gate_o,
            c_bar=c_bar,
            pre_i=pre_i,
            pre_f=pre_f,
            pre_o=pre_o,
            pre_c_bar=pre_c,
            cell=cell,
            hidden=hidden,
        )
        return hidden[:, timesteps, :]

    def backward(self, grad_h_final: np.ndarray):
        """Backpropagate through time from a gradient on ``h_T``.

        Parameters
        ----------
        grad_h_final:
            Gradient of the loss w.r.t. the final hidden state, shape
            ``(batch, hidden_size)``.

        Returns
        -------
        tuple
            ``(grad_inputs, grads)`` where ``grad_inputs`` has the shape of
            the forward inputs and ``grads`` is a dict with keys ``"W_x"``,
            ``"W_h"``, ``"b"``.
        """
        cache = self._cache
        if cache is None:
            raise RuntimeError("backward called before forward")
        batch, timesteps, _ = cache.inputs.shape
        h = self.hidden_size

        grad_W_x = np.zeros_like(self.W_x)
        grad_W_h = np.zeros_like(self.W_h)
        grad_b = np.zeros_like(self.b)
        grad_inputs = np.zeros_like(cache.inputs)

        grad_h = np.asarray(grad_h_final, dtype=np.float64).copy()
        grad_c = np.zeros((batch, h))

        from repro.nn.activations import sigmoid_grad  # local to avoid cycle noise

        for t in range(timesteps - 1, -1, -1):
            c_t = cache.cell[:, t + 1]
            grad_c = grad_c + grad_h * cache.o[:, t] * self._g_grad(c_t)
            grad_o = grad_h * self._g(c_t)
            grad_i = grad_c * cache.c_bar[:, t]
            grad_c_bar = grad_c * cache.i[:, t]
            grad_f = grad_c * cache.cell[:, t]

            d_pre_i = grad_i * sigmoid_grad(cache.pre_i[:, t])
            d_pre_f = grad_f * sigmoid_grad(cache.pre_f[:, t])
            d_pre_o = grad_o * sigmoid_grad(cache.pre_o[:, t])
            d_pre_c = grad_c_bar * self._g_grad(cache.pre_c_bar[:, t])
            d_pre = np.concatenate([d_pre_i, d_pre_f, d_pre_c, d_pre_o], axis=1)

            grad_W_x += cache.inputs[:, t].T @ d_pre
            grad_W_h += cache.hidden[:, t].T @ d_pre
            grad_b += d_pre.sum(axis=0)
            grad_inputs[:, t] = d_pre @ self.W_x.T
            grad_h = d_pre @ self.W_h.T
            grad_c = grad_c * cache.f[:, t]

        return grad_inputs, {"W_x": grad_W_x, "W_h": grad_W_h, "b": grad_b}

    def get_weights(self) -> list:
        """Return ``[W_x, W_h, b]`` — the three arrays of Keras' export."""
        return [self.W_x.copy(), self.W_h.copy(), self.b.copy()]

    def set_weights(self, weights: list) -> None:
        """Load ``[W_x, W_h, b]`` arrays produced by :meth:`get_weights`."""
        w_x, w_h, b = weights
        expected = (self.W_x.shape, self.W_h.shape, self.b.shape)
        got = (np.shape(w_x), np.shape(w_h), np.shape(b))
        if got != expected:
            raise ValueError(f"expected weight shapes {expected}, got {got}")
        self.W_x = np.asarray(w_x, dtype=np.float64).copy()
        self.W_h = np.asarray(w_h, dtype=np.float64).copy()
        self.b = np.asarray(b, dtype=np.float64).copy()
