"""Mini-batch training loop with convergence tracking (paper Fig. 4).

The paper trains the 7,472-parameter LSTM "until convergence", reaching
peak test accuracy 0.9833 around 4K epochs, and plots test accuracy vs
epoch.  :class:`Trainer` reproduces that procedure: shuffled mini-batch
epochs, gradient clipping, periodic held-out evaluation, and a recorded
:class:`ConvergenceHistory` the Fig. 4 benchmark replays.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.nn.kernels import DEFAULT_TRAIN_BACKEND, resolve_training_backend
from repro.nn.metrics import ConfusionMatrix, confusion_matrix
from repro.nn.model import SequenceClassifier
from repro.nn.optimizers import Adam, Optimizer, clip_gradients


@dataclasses.dataclass(frozen=True)
class EpochRecord:
    """One evaluation point on the convergence curve."""

    epoch: int
    train_loss: float
    test_accuracy: float
    test_precision: float
    test_recall: float
    test_f1: float


@dataclasses.dataclass
class ConvergenceHistory:
    """Accumulated evaluation points across a training run."""

    records: list = dataclasses.field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    @property
    def epochs(self) -> list:
        return [r.epoch for r in self.records]

    @property
    def accuracies(self) -> list:
        return [r.test_accuracy for r in self.records]

    @property
    def peak(self) -> EpochRecord:
        """The record with the highest test accuracy (Fig. 4's peak)."""
        if not self.records:
            raise ValueError("history is empty")
        return max(self.records, key=lambda r: r.test_accuracy)


@dataclasses.dataclass
class TrainingConfig:
    """Hyper-parameters for a training run.

    Defaults are sized for the synthetic dataset in this repo; the paper's
    run (4K epochs, 29K sequences) is the same loop with bigger numbers.
    """

    epochs: int = 30
    batch_size: int = 64
    learning_rate: float = 0.003
    gradient_clip: float = 5.0
    eval_every: int = 1
    shuffle: bool = True
    seed: int = 0
    early_stop_accuracy: float | None = None
    #: Multiplicative learning-rate decay applied each epoch (1.0 = none).
    lr_decay: float = 1.0
    #: L2 weight decay coefficient added to every gradient (0.0 = none).
    weight_decay: float = 0.0
    #: Snapshot parameters at every new accuracy peak and restore them
    #: after training — the paper reports its metrics "at this juncture"
    #: (the peak), which is what deployment would ship.
    restore_best_weights: bool = False
    #: Training kernel backend (see ``repro.nn.kernels``): ``"reference"``
    #: or the bit-exact ``"fused"`` pass.  Excluded from the model-cache
    #: key precisely because backends are bit-exact with each other.
    backend: str = DEFAULT_TRAIN_BACKEND


class Trainer:
    """Trains a :class:`SequenceClassifier` and records convergence.

    Parameters
    ----------
    model:
        The classifier to train (mutated in place).
    config:
        Hyper-parameters; see :class:`TrainingConfig`.
    optimizer:
        Optional optimiser instance; defaults to Adam at the configured
        learning rate (the TensorFlow default the paper implies).  Supplying
        a custom optimiser bypasses the model cache, whose key only covers
        the default-Adam trajectory.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; the training kernel
        and cache count their batches/fallbacks/hits against it.
    cache:
        Optional :class:`~repro.nn.cache.ModelCache`.  When set (and the
        optimiser is the default), :meth:`fit` first looks up the
        content-addressed key of this exact run and, on a hit, restores the
        trained weights + history without training a single batch.
    """

    def __init__(
        self,
        model: SequenceClassifier,
        config: TrainingConfig | None = None,
        optimizer: Optimizer | None = None,
        telemetry=None,
        cache=None,
    ):
        self.model = model
        self.config = config or TrainingConfig()
        self._default_optimizer = optimizer is None
        self.optimizer = optimizer or Adam(learning_rate=self.config.learning_rate)
        self.telemetry = telemetry
        self.cache = cache
        self.kernel = resolve_training_backend(
            self.config.backend, model, telemetry=telemetry
        )
        self.history = ConvergenceHistory()

    def _iterate_batches(self, rng: np.random.Generator, sequences, labels):
        """Yield shuffled mini-batches for one epoch."""
        count = sequences.shape[0]
        order = rng.permutation(count) if self.config.shuffle else np.arange(count)
        for start in range(0, count, self.config.batch_size):
            batch = order[start : start + self.config.batch_size]
            yield sequences[batch], labels[batch]

    @staticmethod
    def _validate_eval_split(sequences, labels) -> tuple:
        """Reject empty or mismatched eval splits with a clear error.

        Without this, a bad split surfaces much later as a confusion-matrix
        division artifact (NaN accuracy) or a silent broadcast.
        """
        sequences = np.asarray(sequences)
        labels = np.asarray(labels)
        if sequences.shape[0] != labels.shape[0]:
            raise ValueError(
                f"eval sequence/label count mismatch: {sequences.shape[0]} vs "
                f"{labels.shape[0]}"
            )
        if sequences.shape[0] == 0:
            raise ValueError("cannot evaluate on an empty test split")
        return sequences, labels

    def evaluate(self, sequences: np.ndarray, labels: np.ndarray) -> ConfusionMatrix:
        """Evaluate the current model on a held-out split."""
        sequences, labels = self._validate_eval_split(sequences, labels)
        predictions = self.model.predict(sequences)
        return confusion_matrix(predictions, labels)

    def fit(
        self,
        train_sequences: np.ndarray,
        train_labels: np.ndarray,
        test_sequences: np.ndarray,
        test_labels: np.ndarray,
    ) -> ConvergenceHistory:
        """Run the full training loop.

        Parameters
        ----------
        train_sequences, train_labels:
            Training split: ``(N, T)`` int token ids and ``(N,)`` binary labels.
        test_sequences, test_labels:
            Held-out split evaluated every ``config.eval_every`` epochs.

        Returns
        -------
        ConvergenceHistory
            One record per evaluation epoch (the Fig. 4 curve).
        """
        train_sequences = np.asarray(train_sequences)
        train_labels = np.asarray(train_labels)
        if train_sequences.shape[0] != train_labels.shape[0]:
            raise ValueError(
                f"sequence/label count mismatch: {train_sequences.shape[0]} vs "
                f"{train_labels.shape[0]}"
            )
        if train_sequences.shape[0] == 0:
            raise ValueError("cannot train on an empty dataset")
        test_sequences, test_labels = self._validate_eval_split(
            test_sequences, test_labels
        )

        # The content-addressed cache key covers the initial weights, the
        # config (minus the bit-exact backend choice), and both splits —
        # everything the default-Adam trajectory is a pure function of.
        cache_key = None
        if self.cache is not None and self._default_optimizer:
            cache_key = self.cache.key_for(
                self.model, self.config,
                train_sequences, train_labels, test_sequences, test_labels,
            )
            cached = self.cache.load(cache_key, self.model)
            if cached is not None:
                self.history.records.extend(cached.records)
                return self.history
        records_before = len(self.history.records)

        rng = np.random.default_rng(self.config.seed)
        params = self.model.parameters()
        best_accuracy = -1.0
        best_weights = None

        for epoch in range(1, self.config.epochs + 1):
            epoch_loss_sum = 0.0
            epoch_sample_count = 0
            for batch_sequences, batch_labels in self._iterate_batches(
                rng, train_sequences, train_labels
            ):
                loss, grads = self.kernel.train_batch(batch_sequences, batch_labels)
                if self.config.weight_decay:
                    for key, grad in grads.items():
                        grad += self.config.weight_decay * params[key]
                clip_gradients(grads, self.config.gradient_clip)
                self.optimizer.step(params, grads)
                # Sample-weighted epoch loss: a short final mini-batch must
                # not count as much as a full one.
                epoch_loss_sum += loss * batch_labels.shape[0]
                epoch_sample_count += batch_labels.shape[0]
            if self.config.lr_decay != 1.0 and hasattr(self.optimizer, "learning_rate"):
                self.optimizer.learning_rate *= self.config.lr_decay

            if epoch % self.config.eval_every == 0 or epoch == self.config.epochs:
                matrix = self.evaluate(test_sequences, test_labels)
                self.history.append(
                    EpochRecord(
                        epoch=epoch,
                        train_loss=epoch_loss_sum / epoch_sample_count,
                        test_accuracy=matrix.accuracy,
                        test_precision=matrix.precision,
                        test_recall=matrix.recall,
                        test_f1=matrix.f1,
                    )
                )
                if self.config.restore_best_weights and matrix.accuracy > best_accuracy:
                    best_accuracy = matrix.accuracy
                    best_weights = self.model.get_weights()
                if (
                    self.config.early_stop_accuracy is not None
                    and matrix.accuracy >= self.config.early_stop_accuracy
                ):
                    break

        if self.config.restore_best_weights and best_weights is not None:
            self.model.set_weights(best_weights)
        if cache_key is not None:
            self.cache.store(
                cache_key, self.model, self.history.records[records_before:]
            )
        return self.history
