"""Leave-k-families-out generalisation harness (ROADMAP item 2).

IBM's block-storage study (arXiv 2412.21084) makes the credible critique
of every ransomware detector evaluated the paper's way: shuffled-window
splits leak execution structure across the train/test boundary, so
in-distribution numbers say nothing about the families the model has
never seen — and held-out-family recall is where detectors collapse.
This module runs that exact protocol over the synthetic family
generator, for every signal source in
:data:`repro.ransomware.traces.MODALITIES` (API calls, block I/O,
filesystem events), through the unchanged embedding+LSTM engine:

1. partition the 10 families into leave-``k``-out folds (each family
   held out exactly once across the fold set);
2. per fold: drop the held-out families' windows entirely, train on the
   rest (with a window-level validation split), deploy on the CSD
   engine at each requested :class:`~repro.core.config.OptimizationLevel`;
3. report per-family held-out recall, held-out AUC/precision against
   never-trained benign traffic, and the **recall gap** — in-distribution
   recall minus held-out recall, the block-storage paper's headline
   number (0 = generalises perfectly, large = memorised the families).

Everything is deterministic from ``GeneralizationConfig.seed``:
datasets, fold partition, training, and therefore every reported
number — ``BENCH_generalization.json`` is reproduced bit-identically.

Telemetry (``repro_gen_*``, documented in ``docs/observability.md``) is
attached per the observability contract when a
:class:`~repro.telemetry.Telemetry` session is supplied.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.config import OptimizationLevel
from repro.core.engine import engine_at_level
from repro.core.parallel import parallel_map
from repro.nn.cache import ModelCache
from repro.nn.kernels import DEFAULT_TRAIN_BACKEND, available_training_backends
from repro.nn.metrics import auc, classification_report, confusion_matrix
from repro.nn.model import SequenceClassifier
from repro.nn.trainer import Trainer, TrainingConfig
from repro.ransomware.dataset import DEFAULT_STRIDE, Dataset
from repro.ransomware.families import ALL_FAMILIES
from repro.ransomware.traces import MODALITIES


@dataclasses.dataclass(frozen=True)
class GeneralizationConfig:
    """One harness run's full recipe (deterministic given ``seed``)."""

    #: Signal sources to evaluate, by :data:`MODALITIES` key.
    modalities: tuple = ("api", "block_io", "filesystem")
    #: Families held out per fold (the ``k`` in leave-k-out).
    held_out_per_fold: int = 2
    #: Number of folds to run; ``None`` runs the full partition so every
    #: family is held out exactly once.
    folds: int | None = None
    #: Dataset scale (fraction of the paper's 29K windows) per modality.
    scale: float = 0.04
    sequence_length: int = 60
    stride: int = DEFAULT_STRIDE
    seed: int = 7
    #: Detection threshold for recall/precision.
    threshold: float = 0.5
    #: Engine rungs to deploy and report at.
    optimizations: tuple = (OptimizationLevel.FIXED_POINT,)
    epochs: int = 10
    learning_rate: float = 0.005
    #: Validation fraction carved from the training families' windows.
    test_fraction: float = 0.2
    #: With ``workers > 1`` the independent (modality, fold) tasks run
    #: concurrently on :func:`repro.core.parallel.parallel_map` (results
    #: and telemetry merge in fold order — bit-identical to ``workers=1``);
    #: serial runs instead pass ``workers`` down to the engine's
    #: shard-parallel ``predict_proba``.
    workers: int = 1
    #: Training kernel backend (``repro.nn.kernels``); ``"fused"`` is
    #: bit-exact with ``"reference"`` and ~4x faster on a compiled tier.
    train_backend: str = DEFAULT_TRAIN_BACKEND
    #: Optional directory for the content-addressed model cache: repeat
    #: runs with identical recipes restore every trained model from disk
    #: (``repro_train_cache_hits_total``) instead of retraining.
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        if not self.modalities:
            raise ValueError("need at least one modality")
        unknown = [m for m in self.modalities if m not in MODALITIES]
        if unknown:
            raise ValueError(
                f"unknown modalities {unknown}; available: {sorted(MODALITIES)}"
            )
        if not 1 <= self.held_out_per_fold < len(ALL_FAMILIES):
            raise ValueError(
                f"held_out_per_fold must be in [1, {len(ALL_FAMILIES) - 1}], "
                f"got {self.held_out_per_fold}"
            )
        if self.folds is not None and self.folds < 1:
            raise ValueError(f"folds must be positive, got {self.folds}")
        if self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.train_backend not in available_training_backends():
            raise ValueError(
                f"unknown train backend {self.train_backend!r}; "
                f"available: {available_training_backends()}"
            )


def leave_k_out_folds(
    family_names, k: int, folds: int | None = None, seed: int = 0
) -> tuple:
    """Partition ``family_names`` into leave-``k``-out held-out groups.

    The names are permuted deterministically from ``seed`` and chunked
    into groups of ``k`` (the last group may be smaller), so the full
    partition holds every family out exactly once.  ``folds`` truncates
    to the first ``folds`` groups for quick runs.
    """
    names = list(family_names)
    if not names:
        raise ValueError("no family names to partition")
    if not 1 <= k <= len(names):
        raise ValueError(f"k must be in [1, {len(names)}], got {k}")
    order = np.random.default_rng(seed).permutation(len(names))
    permuted = [names[i] for i in order]
    groups = [
        tuple(sorted(permuted[start : start + k]))
        for start in range(0, len(permuted), k)
    ]
    if folds is not None:
        groups = groups[:folds]
    return tuple(groups)


@dataclasses.dataclass(frozen=True)
class LevelMetrics:
    """One (fold, OptimizationLevel) evaluation."""

    optimization: str
    #: accuracy/precision/recall/f1 on the in-distribution test split.
    in_distribution: dict
    in_distribution_auc: float
    #: Recall over the held-out families' windows (all positives).
    held_out_recall: float
    #: AUC/precision over held-out positives vs in-distribution benign
    #: test windows (benign traffic the model was also not trained on).
    held_out_auc: float
    held_out_precision: float
    #: in-distribution recall minus held-out recall: the headline number.
    recall_gap: float
    #: family name -> recall over that family's held-out windows.
    per_family_recall: dict

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class FoldResult:
    """One leave-k-out fold for one modality."""

    fold_index: int
    held_out: tuple
    train_windows: int
    in_distribution_windows: int
    held_out_windows: int
    levels: tuple

    def level(self, optimization) -> LevelMetrics:
        name = getattr(optimization, "name", optimization)
        for metrics in self.levels:
            if metrics.optimization == name:
                return metrics
        raise KeyError(f"fold was not evaluated at {name}")

    def as_dict(self) -> dict:
        return {
            "fold_index": self.fold_index,
            "held_out": list(self.held_out),
            "train_windows": self.train_windows,
            "in_distribution_windows": self.in_distribution_windows,
            "held_out_windows": self.held_out_windows,
            "levels": [metrics.as_dict() for metrics in self.levels],
        }


@dataclasses.dataclass(frozen=True)
class ModalityResult:
    """All folds for one signal source."""

    modality: str
    vocabulary_size: int
    folds: tuple

    def per_family_recall(self, optimization) -> dict:
        """family -> held-out recall, merged across folds."""
        merged: dict = {}
        for fold in self.folds:
            merged.update(fold.level(optimization).per_family_recall)
        return dict(sorted(merged.items()))

    def mean_held_out_recall(self, optimization) -> float:
        values = [fold.level(optimization).held_out_recall for fold in self.folds]
        return float(np.mean(values))

    def mean_recall_gap(self, optimization) -> float:
        values = [fold.level(optimization).recall_gap for fold in self.folds]
        return float(np.mean(values))

    def as_dict(self) -> dict:
        return {
            "modality": self.modality,
            "vocabulary_size": self.vocabulary_size,
            "folds": [fold.as_dict() for fold in self.folds],
        }


@dataclasses.dataclass(frozen=True)
class GeneralizationReport:
    """Full harness outcome: modality x fold x level."""

    config: GeneralizationConfig
    fold_sets: tuple
    modalities: tuple

    def modality(self, name: str) -> ModalityResult:
        for result in self.modalities:
            if result.modality == name:
                return result
        raise KeyError(f"modality {name!r} not in report")

    def as_dict(self) -> dict:
        """Plain JSON-able document (the BENCH_generalization.json body)."""
        return {
            "protocol": "leave-k-families-out",
            "config": {
                "modalities": list(self.config.modalities),
                "held_out_per_fold": self.config.held_out_per_fold,
                "folds": len(self.fold_sets),
                "scale": self.config.scale,
                "sequence_length": self.config.sequence_length,
                "seed": self.config.seed,
                "threshold": self.config.threshold,
                "optimizations": [
                    level.name for level in self.config.optimizations
                ],
                "epochs": self.config.epochs,
            },
            "fold_sets": [list(fold) for fold in self.fold_sets],
            "modalities": [result.as_dict() for result in self.modalities],
        }


def evaluate_generalization(
    config: GeneralizationConfig | None = None,
    telemetry=None,
    progress=None,
) -> GeneralizationReport:
    """Run the leave-k-families-out protocol for every configured modality.

    Parameters
    ----------
    config:
        The full recipe; defaults to :class:`GeneralizationConfig`'s
        defaults (all three modalities, full fold partition).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` session; emits the
        ``repro_gen_*`` metrics documented in ``docs/observability.md``.
    progress:
        Optional callable receiving one human-readable line per step
        (the CLI passes ``print``).
    """
    config = config or GeneralizationConfig()
    emit = progress or (lambda line: None)
    family_names = [family.name for family in ALL_FAMILIES]
    fold_sets = leave_k_out_folds(
        family_names, config.held_out_per_fold,
        folds=config.folds, seed=config.seed,
    )

    # Every dataset is deterministic from config.seed alone, so they can
    # all be materialised upfront (parent-side) before any fold runs —
    # which is what lets the fold pool fork with the data already built.
    datasets: dict = {}
    for modality_name in config.modalities:
        modality = MODALITIES[modality_name]
        emit(f"[{modality_name}] building dataset "
             f"(scale {config.scale}, vocab {modality.vocabulary.size})")
        datasets[modality_name] = modality.build_dataset(
            scale=config.scale,
            sequence_length=config.sequence_length,
            stride=config.stride,
            seed=config.seed,
            shuffle=True,
        )

    # One task per (modality, fold): every task is independent, so they
    # go through parallel_map as a flat list.  With workers=1 this is the
    # plain serial loop (tasks run in order, in process, on the parent
    # telemetry session); with workers>1 the folds run concurrently, the
    # engine's inner shard pool is disabled (no nested pools), progress
    # lines are replayed parent-side in fold order, and per-worker
    # telemetry merges deterministically — same results either way.
    tasks = [
        (modality_name, fold_index)
        for modality_name in config.modalities
        for fold_index in range(len(fold_sets))
    ]
    pooled = config.workers > 1 and len(tasks) > 1
    task_emit = (lambda line: None) if pooled else emit
    engine_workers = 1 if pooled else config.workers

    def _run_task(index: int, task_telemetry) -> FoldResult:
        modality_name, fold_index = tasks[index]
        return _evaluate_fold(
            modality_name, datasets[modality_name], fold_index,
            fold_sets[fold_index], config, task_telemetry, task_emit,
            engine_workers=engine_workers,
        )

    fold_results = parallel_map(
        _run_task, len(tasks),
        workers=config.workers if pooled else 1,
        telemetry=telemetry,
    )

    modality_results: list = []
    for modality_name in config.modalities:
        folds = tuple(
            fold_results[index]
            for index, (task_modality, _) in enumerate(tasks)
            if task_modality == modality_name
        )
        if pooled:
            for fold in folds:
                for metrics in fold.levels:
                    emit(
                        f"[{modality_name}] fold {fold.fold_index} "
                        f"({', '.join(fold.held_out)}) {metrics.optimization}: "
                        f"id-recall {metrics.in_distribution['recall']:.3f} "
                        f"held-out {metrics.held_out_recall:.3f} "
                        f"gap {metrics.recall_gap:+.3f}"
                    )
        modality_results.append(
            ModalityResult(
                modality=modality_name,
                vocabulary_size=MODALITIES[modality_name].vocabulary.size,
                folds=folds,
            )
        )
        if telemetry is not None:
            result = modality_results[-1]
            for level in config.optimizations:
                telemetry.gauge(
                    "repro_gen_recall_gap",
                    modality=modality_name, optimization=level.name,
                ).set(result.mean_recall_gap(level))
            primary = config.optimizations[0]
            for family, recall in result.per_family_recall(primary).items():
                telemetry.gauge(
                    "repro_gen_heldout_recall",
                    modality=modality_name, family=family,
                ).set(recall)

    return GeneralizationReport(
        config=config,
        fold_sets=fold_sets,
        modalities=tuple(modality_results),
    )


def _evaluate_fold(
    modality_name: str,
    dataset: Dataset,
    fold_index: int,
    held_out: tuple,
    config: GeneralizationConfig,
    telemetry,
    emit,
    engine_workers: int = 1,
) -> FoldResult:
    """Train on all but ``held_out`` families; evaluate both sides."""
    in_distribution_full, held_out_set = dataset.split_by_source(held_out)
    train_split, test_split = in_distribution_full.train_test_split(
        config.test_fraction, seed=config.seed
    )

    model = SequenceClassifier(
        vocab_size=MODALITIES[modality_name].vocabulary.size, seed=config.seed
    )
    trainer = Trainer(
        model,
        TrainingConfig(
            epochs=config.epochs, eval_every=config.epochs,
            learning_rate=config.learning_rate, seed=config.seed,
            backend=config.train_backend,
        ),
        telemetry=telemetry,
        cache=ModelCache(config.cache_dir, telemetry) if config.cache_dir else None,
    )
    trainer.fit(
        train_split.sequences, train_split.labels,
        test_split.sequences, test_split.labels,
    )

    if telemetry is not None:
        telemetry.counter("repro_gen_folds_total", modality=modality_name).inc()
        for split_name, split in (
            ("train", train_split),
            ("in_distribution", test_split),
            ("held_out", held_out_set),
        ):
            telemetry.counter(
                "repro_gen_windows_total",
                modality=modality_name, split=split_name,
            ).inc(len(split))

    held_sources = np.array(held_out_set.sources)
    benign_mask = test_split.labels == 0
    levels: list = []
    for level in config.optimizations:
        engine = engine_at_level(
            model, level, sequence_length=config.sequence_length
        )
        if telemetry is not None:
            engine.attach_telemetry(telemetry)
        id_probs = engine.predict_proba(
            test_split.sequences, workers=engine_workers
        )
        held_probs = engine.predict_proba(
            held_out_set.sequences, workers=engine_workers
        )

        id_predictions = (id_probs >= config.threshold).astype(int)
        in_distribution = classification_report(id_predictions, test_split.labels)
        in_distribution_auc = auc(id_probs, test_split.labels)

        held_predictions = (held_probs >= config.threshold).astype(int)
        held_out_recall = float(held_predictions.mean())
        per_family = {
            family: float(held_predictions[held_sources == family].mean())
            for family in held_out
        }
        # Held-out discrimination: the held-out families' windows against
        # benign *test* windows (neither side was trained on).
        mixed_scores = np.concatenate([held_probs, id_probs[benign_mask]])
        mixed_labels = np.concatenate([
            np.ones(len(held_probs), dtype=int),
            np.zeros(int(benign_mask.sum()), dtype=int),
        ])
        held_out_auc = auc(mixed_scores, mixed_labels)
        held_out_precision = confusion_matrix(
            (mixed_scores >= config.threshold).astype(int), mixed_labels
        ).precision

        metrics = LevelMetrics(
            optimization=level.name,
            in_distribution=in_distribution,
            in_distribution_auc=in_distribution_auc,
            held_out_recall=held_out_recall,
            held_out_auc=held_out_auc,
            held_out_precision=held_out_precision,
            recall_gap=in_distribution["recall"] - held_out_recall,
            per_family_recall=per_family,
        )
        levels.append(metrics)
        emit(
            f"[{modality_name}] fold {fold_index} ({', '.join(held_out)}) "
            f"{level.name}: id-recall {in_distribution['recall']:.3f} "
            f"held-out {held_out_recall:.3f} gap {metrics.recall_gap:+.3f}"
        )

    return FoldResult(
        fold_index=fold_index,
        held_out=held_out,
        train_windows=len(train_split),
        in_distribution_windows=len(test_split),
        held_out_windows=len(held_out_set),
        levels=tuple(levels),
    )
