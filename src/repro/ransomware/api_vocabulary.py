"""Windows API-call vocabulary.

The paper's embedding table holds 2,224 parameters at embedding size 8,
fixing the vocabulary at exactly M = 278 distinct items — the set of all
API calls observed across the Cuckoo traces.  This module defines a
concrete 278-call vocabulary of real Windows API names, grouped into
behavioural categories the trace synthesiser draws from.

The categories matter more than the individual names: ransomware traces
over-sample ``crypto`` + ``file`` + ``shadow_copy``-style calls in tight
loops, self-propagating families add ``network`` scanning bursts, and
benign applications live mostly in ``ui`` / ``registry`` / ``file`` with
very different mixing ratios.
"""

from __future__ import annotations

API_CATEGORIES = {
    "process": (
        "NtCreateUserProcess", "CreateProcessInternalW", "CreateProcessW",
        "OpenProcess", "NtOpenProcess", "TerminateProcess", "NtTerminateProcess",
        "CreateThread", "CreateRemoteThread", "NtCreateThreadEx", "OpenThread",
        "SuspendThread", "ResumeThread", "NtResumeThread", "ExitProcess",
        "GetCurrentProcess", "GetCurrentProcessId", "GetCurrentThreadId",
        "Process32FirstW", "Process32NextW", "CreateToolhelp32Snapshot",
        "EnumProcesses", "GetExitCodeProcess", "QueueUserAPC",
        "SetThreadContext", "GetThreadContext", "ShellExecuteExW", "WinExec",
        "NtQueryInformationProcess", "IsDebuggerPresent",
    ),
    "file": (
        "NtCreateFile", "CreateFileW", "CreateFileA", "NtOpenFile",
        "NtReadFile", "ReadFile", "NtWriteFile", "WriteFile", "NtClose",
        "CloseHandle", "DeleteFileW", "NtDeleteFile", "MoveFileWithProgressW",
        "MoveFileExW", "CopyFileExW", "FindFirstFileExW", "FindNextFileW",
        "FindClose", "GetFileAttributesW", "SetFileAttributesW",
        "GetFileSizeEx", "SetFilePointerEx", "SetEndOfFile", "FlushFileBuffers",
        "NtQueryDirectoryFile", "NtQueryInformationFile", "NtSetInformationFile",
        "GetTempPathW", "GetTempFileNameW", "CreateDirectoryW",
        "RemoveDirectoryW", "GetLogicalDrives", "GetDriveTypeW",
        "GetDiskFreeSpaceExW", "GetVolumeInformationW", "SearchPathW",
        "GetFullPathNameW", "GetLongPathNameW", "LockFile", "UnlockFile",
    ),
    "registry": (
        "RegOpenKeyExW", "RegOpenKeyExA", "NtOpenKey", "NtOpenKeyEx",
        "RegCreateKeyExW", "NtCreateKey", "RegQueryValueExW", "RegQueryValueExA",
        "NtQueryValueKey", "RegSetValueExW", "RegSetValueExA", "NtSetValueKey",
        "RegDeleteValueW", "NtDeleteValueKey", "RegDeleteKeyW", "NtDeleteKey",
        "RegEnumKeyExW", "RegEnumValueW", "NtEnumerateKey", "NtEnumerateValueKey",
        "RegCloseKey", "RegQueryInfoKeyW", "NtQueryKey", "RegGetValueW",
        "RegFlushKey", "RegSaveKeyExW", "RegLoadKeyW", "RegNotifyChangeKeyValue",
        "RegConnectRegistryW", "SHGetValueW",
    ),
    "network": (
        "WSAStartup", "WSASocketW", "socket", "connect", "WSAConnect",
        "bind", "listen", "accept", "send", "WSASend", "recv", "WSARecv",
        "sendto", "recvfrom", "closesocket", "shutdown", "gethostbyname",
        "GetAddrInfoW", "getaddrinfo", "inet_addr", "htons", "select",
        "ioctlsocket", "setsockopt", "InternetOpenW", "InternetOpenUrlW",
        "InternetConnectW", "InternetReadFile", "InternetCloseHandle",
        "HttpOpenRequestW", "HttpSendRequestW", "WinHttpOpen",
        "WinHttpConnect", "WinHttpSendRequest", "DnsQuery_W",
    ),
    "crypto": (
        "CryptAcquireContextW", "CryptReleaseContext", "CryptGenKey",
        "CryptDeriveKey", "CryptImportKey", "CryptExportKey", "CryptDestroyKey",
        "CryptEncrypt", "CryptDecrypt", "CryptGenRandom", "CryptCreateHash",
        "CryptHashData", "CryptGetHashParam", "CryptDestroyHash",
        "BCryptOpenAlgorithmProvider", "BCryptGenerateSymmetricKey",
        "BCryptEncrypt", "BCryptDecrypt", "BCryptGenRandom",
        "BCryptCloseAlgorithmProvider", "NCryptOpenStorageProvider",
        "NCryptCreatePersistedKey", "NCryptEncrypt", "CryptProtectData",
        "CryptUnprotectData",
    ),
    "memory": (
        "NtAllocateVirtualMemory", "VirtualAlloc", "VirtualAllocEx",
        "NtFreeVirtualMemory", "VirtualFree", "VirtualProtect",
        "VirtualProtectEx", "NtProtectVirtualMemory", "ReadProcessMemory",
        "NtReadVirtualMemory", "WriteProcessMemory", "NtWriteVirtualMemory",
        "NtMapViewOfSection", "NtUnmapViewOfSection", "NtCreateSection",
        "MapViewOfFile", "UnmapViewOfFile", "CreateFileMappingW",
        "HeapCreate", "HeapAlloc", "HeapFree", "HeapReAlloc",
        "GlobalAlloc", "GlobalFree", "LocalAlloc",
    ),
    "synchronization": (
        "CreateMutexW", "OpenMutexW", "NtCreateMutant", "NtOpenMutant",
        "ReleaseMutex", "CreateEventW", "OpenEventW", "SetEvent", "ResetEvent",
        "WaitForSingleObject", "WaitForSingleObjectEx", "WaitForMultipleObjects",
        "NtWaitForSingleObject", "Sleep", "SleepEx", "NtDelayExecution",
        "CreateSemaphoreW", "ReleaseSemaphore", "InitializeCriticalSection",
        "EnterCriticalSection",
    ),
    "ui": (
        "CreateWindowExW", "DestroyWindow", "ShowWindow", "UpdateWindow",
        "FindWindowW", "FindWindowExW", "GetForegroundWindow",
        "SetForegroundWindow", "GetWindowTextW", "SetWindowTextW",
        "MessageBoxW", "MessageBoxTimeoutW", "DialogBoxParamW", "SendMessageW",
        "PostMessageW", "GetMessageW", "PeekMessageW", "DispatchMessageW",
        "TranslateMessage", "DefWindowProcW", "GetDC", "ReleaseDC",
        "BitBlt", "LoadIconW", "SetClipboardData",
    ),
    "service": (
        "OpenSCManagerW", "CreateServiceW", "OpenServiceW", "StartServiceW",
        "ControlService", "DeleteService", "CloseServiceHandle",
        "QueryServiceStatusEx", "ChangeServiceConfigW", "EnumServicesStatusExW",
        "StartServiceCtrlDispatcherW", "RegisterServiceCtrlHandlerW",
        "SetServiceStatus", "NtLoadDriver", "NtUnloadDriver",
        "DeviceIoControl", "CreateJobObjectW", "AssignProcessToJobObject",
        "OpenEventLogW", "ClearEventLogW",
    ),
    "system_info": (
        "GetSystemInfo", "GetNativeSystemInfo", "GetVersionExW",
        "RtlGetVersion", "GetComputerNameW", "GetComputerNameExW",
        "GetUserNameW", "GetUserNameExW", "LookupAccountSidW",
        "GetSystemTime", "GetSystemTimeAsFileTime", "GetLocalTime",
        "GetTickCount", "GetTickCount64", "QueryPerformanceCounter",
        "GetSystemDirectoryW", "GetWindowsDirectoryW", "GetEnvironmentVariableW",
        "SetEnvironmentVariableW", "ExpandEnvironmentStringsW",
        "GetModuleHandleW", "GetModuleFileNameW", "LoadLibraryExW",
        "GetProcAddress", "LdrLoadDll", "LdrGetProcedureAddress",
        "NtQuerySystemInformation", "GetAdaptersInfo",
    ),
}

#: Flat, ordered vocabulary: token id = index into this tuple.
API_NAMES = tuple(name for names in API_CATEGORIES.values() for name in names)

#: Token id lookup.
API_TO_ID = {name: index for index, name in enumerate(API_NAMES)}

#: Category of each API name.
API_TO_CATEGORY = {
    name: category for category, names in API_CATEGORIES.items() for name in names
}

#: The paper's vocabulary size (fixed by the 2,224-parameter embedding).
VOCABULARY_SIZE = len(API_NAMES)

#: Token ids per category, for the generators.
CATEGORY_TOKEN_IDS = {
    category: tuple(API_TO_ID[name] for name in names)
    for category, names in API_CATEGORIES.items()
}


def encode(calls) -> list:
    """Map an iterable of API names to token ids.

    Raises
    ------
    KeyError
        If a call is not in the vocabulary (the trace synthesiser only
        emits known calls; out-of-vocabulary input indicates a bug or
        foreign trace — surface it rather than guessing).
    """
    return [API_TO_ID[call] for call in calls]


def decode(token_ids) -> list:
    """Map token ids back to API names."""
    return [API_NAMES[token] for token in token_ids]
