"""Trace adapters: quantise block-I/O and filesystem traces into tokens.

The serving stack consumes integer token sequences; a modality is
nothing more than a vocabulary plus a tokenizer.  This module quantises
both new signal sources into small, fixed vocabularies:

* **block-I/O** — each request becomes one token encoding the operation,
  the LBA *delta class* relative to the previous request's end
  (sequential / small or far jump, forward or backward), the transfer
  *size class*, and — for writes — the inline payload-entropy class.
  The ransomware signature (``read extent → overwrite in place at
  near-maximal entropy → trim``) survives quantisation as a distinctive
  token trigram.
* **filesystem** — each event becomes one token encoding the operation
  and the file's extension class; renames encode the ``(from, to)``
  extension pair, so ``doc → crypt`` churn is a single, very loud token.

Both tokenizers are stateless functions of the trace (the block-I/O one
carries only the previous-request cursor), so equal traces always yield
equal token sequences.  :data:`MODALITIES` registers all three signal
sources — including the paper's API-call modality — behind one
``build_dataset``-shaped entry point for the generalisation harness.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.ransomware.api_vocabulary import API_NAMES, VOCABULARY_SIZE
from repro.ransomware.benign import ALL_BENIGN_PROFILES
from repro.ransomware.dataset import (
    DEFAULT_STRIDE,
    PAPER_BENIGN_SEQUENCES,
    PAPER_RANSOMWARE_SEQUENCES,
    PAPER_SEQUENCE_LENGTH,
    Dataset,
    _distribute,
    build_dataset,
    extract_windows,
)
from repro.ransomware.families import ALL_FAMILIES
from repro.ransomware.traces.block_io import (
    BlockIoSynthesizer,
    BlockIoTrace,
)
from repro.ransomware.traces.filesystem import (
    EXTENSIONS,
    FS_OPS,
    FsEventSynthesizer,
    FsEventTrace,
)


@dataclasses.dataclass(frozen=True)
class TraceVocabulary:
    """An ordered token vocabulary for one modality."""

    name: str
    tokens: tuple

    def __post_init__(self) -> None:
        if len(set(self.tokens)) != len(self.tokens):
            raise ValueError(f"{self.name}: duplicate token names")

    @property
    def size(self) -> int:
        return len(self.tokens)

    @property
    def index(self) -> dict:
        # Computed lazily (frozen dataclass) and cached on the instance.
        cached = self.__dict__.get("_index")
        if cached is None:
            cached = {token: i for i, token in enumerate(self.tokens)}
            object.__setattr__(self, "_index", cached)
        return cached

    def encode(self, names) -> list:
        index = self.index
        try:
            return [index[name] for name in names]
        except KeyError as exc:
            raise KeyError(f"{exc.args[0]!r} not in the {self.name} vocabulary") from None

    def decode(self, token_ids) -> list:
        return [self.tokens[token] for token in token_ids]


@dataclasses.dataclass(frozen=True)
class TokenTrace:
    """A trace already quantised to token ids.

    Exposes ``token_ids`` so :func:`repro.ransomware.dataset.extract_windows`
    windows it exactly like an :class:`~repro.ransomware.sandbox.ApiTrace`.
    """

    token_ids: tuple
    source: str
    variant: int
    is_ransomware: bool

    def __len__(self) -> int:
        return len(self.token_ids)


# ----------------------------------------------------------------------
# Block-I/O quantisation
# ----------------------------------------------------------------------

#: LBA-delta classes, measured against the previous request's end: a
#: delta of zero is perfectly sequential; "near" is within one typical
#: file's reach (8 MiB at 4 KiB blocks); anything further is a seek.
_DELTA_CLASSES = ("seq", "fwd_near", "fwd_far", "back_near", "back_far")
_DELTA_NEAR_BLOCKS = 2048

#: Transfer-size classes in blocks.
_SIZE_CLASSES = ("tiny", "small", "medium", "large")
_SIZE_EDGES = (2, 16, 128)      # tiny <= 2 < small <= 16 < medium <= 128 < large

#: Write-entropy classes over the inline entropy proxy.
_ENTROPY_CLASSES = ("low", "mid", "high", "max")
_ENTROPY_EDGES = (0.3, 0.7, 0.9)


def _build_block_io_vocabulary() -> TraceVocabulary:
    tokens: list = []
    for delta in _DELTA_CLASSES:
        for size in _SIZE_CLASSES:
            tokens.append(f"read:{delta}:{size}")
    for delta in _DELTA_CLASSES:
        for size in _SIZE_CLASSES:
            for entropy in _ENTROPY_CLASSES:
                tokens.append(f"write:{delta}:{size}:{entropy}")
    for size in _SIZE_CLASSES:
        tokens.append(f"trim:{size}")
    tokens.append("flush")
    return TraceVocabulary(name="block_io", tokens=tuple(tokens))


#: 105 tokens: 5x4 reads + 5x4x4 writes + 4 trims + flush.
BLOCK_IO_VOCABULARY = _build_block_io_vocabulary()


def _delta_class(delta: int) -> str:
    if delta == 0:
        return "seq"
    if delta > 0:
        return "fwd_near" if delta <= _DELTA_NEAR_BLOCKS else "fwd_far"
    return "back_near" if -delta <= _DELTA_NEAR_BLOCKS else "back_far"


def _bucket(value, edges, classes) -> str:
    for edge, cls in zip(edges, classes):
        if value <= edge:
            return cls
    return classes[-1]


def tokenize_block_trace(trace: BlockIoTrace) -> TokenTrace:
    """Quantise one block-I/O trace into ``BLOCK_IO_VOCABULARY`` tokens."""
    index = BLOCK_IO_VOCABULARY.index
    token_ids: list = []
    cursor = None        # previous request's end LBA
    for event in trace.events:
        if event.op == "flush":
            token_ids.append(index["flush"])
            continue
        delta = "seq" if cursor is None else _delta_class(event.lba - cursor)
        size = _bucket(event.blocks, _SIZE_EDGES, _SIZE_CLASSES)
        if event.op == "read":
            name = f"read:{delta}:{size}"
        elif event.op == "write":
            entropy = _bucket(event.entropy, _ENTROPY_EDGES, _ENTROPY_CLASSES)
            name = f"write:{delta}:{size}:{entropy}"
        else:           # trim
            name = f"trim:{size}"
        token_ids.append(index[name])
        cursor = event.lba + event.blocks
    return TokenTrace(
        token_ids=tuple(token_ids),
        source=trace.source,
        variant=trace.variant,
        is_ransomware=trace.is_ransomware,
    )


# ----------------------------------------------------------------------
# Filesystem quantisation
# ----------------------------------------------------------------------

def _build_filesystem_vocabulary() -> TraceVocabulary:
    tokens: list = []
    for op in FS_OPS:
        if op == "rename":
            continue
        for ext in EXTENSIONS:
            tokens.append(f"{op}:{ext}")
    for ext in EXTENSIONS:
        for new_ext in EXTENSIONS:
            tokens.append(f"rename:{ext}:{new_ext}")
    return TraceVocabulary(name="filesystem", tokens=tuple(tokens))


#: 120 tokens: 7 non-rename ops x 8 extensions + 8x8 rename pairs.
FILESYSTEM_VOCABULARY = _build_filesystem_vocabulary()


def tokenize_filesystem_trace(trace: FsEventTrace) -> TokenTrace:
    """Quantise one filesystem-event trace into ``FILESYSTEM_VOCABULARY`` tokens."""
    index = FILESYSTEM_VOCABULARY.index
    token_ids: list = []
    for event in trace.events:
        if event.op == "rename":
            name = f"rename:{event.ext}:{event.new_ext}"
        else:
            name = f"{event.op}:{event.ext}"
        token_ids.append(index[name])
    return TokenTrace(
        token_ids=tuple(token_ids),
        source=trace.source,
        variant=trace.variant,
        is_ransomware=trace.is_ransomware,
    )


# ----------------------------------------------------------------------
# Dataset builders (mirror repro.ransomware.dataset.build_dataset)
# ----------------------------------------------------------------------

def _build_trace_dataset(
    synthesizer,
    tokenize,
    scale: float,
    sequence_length: int,
    stride: int,
    seed: int,
    shuffle: bool,
) -> Dataset:
    """Shared windowing/accounting for both trace modalities.

    Identical protocol to :func:`~repro.ransomware.dataset.build_dataset`:
    the same paper-scale sequence quotas, the same per-variant window
    distribution, the same final shuffle — only the signal source and
    vocabulary differ, so cross-modality comparisons hold the dataset
    methodology fixed.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    total_variants = sum(family.variant_count for family in ALL_FAMILIES)
    ransomware_total = max(total_variants, int(round(PAPER_RANSOMWARE_SEQUENCES * scale)))
    benign_total = max(len(ALL_BENIGN_PROFILES), int(round(PAPER_BENIGN_SEQUENCES * scale)))

    sequences: list = []
    labels: list = []
    sources: list = []

    variant_counts = _distribute(ransomware_total, total_variants)
    variant_cursor = 0
    for family in ALL_FAMILIES:
        for variant_index in range(family.variant_count):
            trace = tokenize(synthesizer.synthesize_ransomware(family, variant_index))
            for window in extract_windows(
                trace, sequence_length, variant_counts[variant_cursor]
            ):
                sequences.append(window)
                labels.append(1)
                sources.append(family.name)
            variant_cursor += 1

    benign_counts = _distribute(benign_total, len(ALL_BENIGN_PROFILES))
    for profile_index, profile in enumerate(ALL_BENIGN_PROFILES):
        count = benign_counts[profile_index]
        target_length = max(
            sequence_length + stride * (count - 1) + 64,
            sequence_length + 1200,
        )
        trace = tokenize(
            synthesizer.synthesize_benign(
                profile, profile_index, target_length=target_length
            )
        )
        for window in extract_windows(trace, sequence_length, count):
            sequences.append(window)
            labels.append(0)
            sources.append(profile.name)

    dataset = Dataset(
        sequences=np.asarray(sequences, dtype=np.int64),
        labels=np.asarray(labels, dtype=np.int64),
        sources=tuple(sources),
    )
    if shuffle:
        dataset = dataset.shuffled(seed)
    return dataset


def build_block_io_dataset(
    scale: float = 1.0,
    sequence_length: int = PAPER_SEQUENCE_LENGTH,
    stride: int = DEFAULT_STRIDE,
    seed: int = 0,
    shuffle: bool = True,
) -> Dataset:
    """Synthesise the block-I/O dataset (paper-protocol windowing)."""
    return _build_trace_dataset(
        BlockIoSynthesizer(seed=seed),
        tokenize_block_trace,
        scale, sequence_length, stride, seed, shuffle,
    )


def build_filesystem_dataset(
    scale: float = 1.0,
    sequence_length: int = PAPER_SEQUENCE_LENGTH,
    stride: int = DEFAULT_STRIDE,
    seed: int = 0,
    shuffle: bool = True,
) -> Dataset:
    """Synthesise the filesystem-event dataset (paper-protocol windowing)."""
    return _build_trace_dataset(
        FsEventSynthesizer(seed=seed),
        tokenize_filesystem_trace,
        scale, sequence_length, stride, seed, shuffle,
    )


# ----------------------------------------------------------------------
# Modality registry
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Modality:
    """One signal source the serving stack can be trained against.

    ``build_dataset`` shares :func:`repro.ransomware.dataset.build_dataset`'s
    signature: ``(scale, sequence_length, stride, seed, shuffle)``.
    """

    name: str
    vocabulary: TraceVocabulary
    build_dataset: object
    description: str = ""


#: All signal sources, keyed by CLI/report name.  ``api`` is the paper's
#: original modality behind the same interface.
MODALITIES = {
    "api": Modality(
        name="api",
        vocabulary=TraceVocabulary(name="api", tokens=API_NAMES),
        build_dataset=build_dataset,
        description="Windows API-call sequences (the paper's signal)",
    ),
    "block_io": Modality(
        name="block_io",
        vocabulary=BLOCK_IO_VOCABULARY,
        build_dataset=build_block_io_dataset,
        description="Block-layer requests: LBA deltas, sizes, write entropy",
    ),
    "filesystem": Modality(
        name="filesystem",
        vocabulary=FILESYSTEM_VOCABULARY,
        build_dataset=build_filesystem_dataset,
        description="Filesystem events: op x extension class, rename churn",
    ),
}

assert MODALITIES["api"].vocabulary.size == VOCABULARY_SIZE
