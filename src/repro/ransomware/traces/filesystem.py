"""Synthetic filesystem-event trace generation (SHIELD's signal source).

SHIELD (arXiv 2501.16619) detects ransomware from deep filesystem
features rather than API hooks: which operations hit which file classes,
rename/extension churn, deletion bursts.  This module renders the
repository's shared behaviour profiles as that event stream: every
event is ``(operation, extension-class[, rename-target class])``.

The telltale structure at this level is *extension churn*: ransomware
opens a user document, reads it, writes it back, and renames it to the
family's ransom extension (``crypt``), then moves on — thousands of
``doc → crypt`` renames.  Benign bulk jobs produce overlapping-but-
different churn: an atomic-replace backup writes ``tmp`` files and
renames them *back* to the original extension, an archiver appends
``arc`` containers without touching the originals.  As with the other
modalities, the phase → event mapping is a pure function of the phase's
contents, so the benign hard negatives carry over by construction.

Determinism matches :class:`~repro.ransomware.sandbox.CuckooSandbox`:
one ``(seed, source, variant)`` triple, one byte-identical trace.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from repro.ransomware.benign import BenignProfile
from repro.ransomware.families import FamilyProfile, Phase

#: File-extension classes (coarse, the way a filesystem filter would bin
#: them): user documents, images, media, databases, executables/system,
#: configuration, temporaries/archives, and the ransom extension.
EXTENSIONS = ("doc", "img", "media", "db", "exe", "cfg", "tmp", "crypt")

#: Filesystem operations observed by the event tap.
FS_OPS = ("open", "create", "read", "write", "rename", "delete", "close", "stat")

#: User-content extensions a bulk file pass walks over.
_USER_EXTS = ("doc", "img", "media", "db")

#: Probability of an unrelated interleaved event (other processes).
BACKGROUND_NOISE_RATE = 0.03


@dataclasses.dataclass(frozen=True)
class FsEvent:
    """One filesystem event.

    ``new_ext`` is only set for ``rename`` and records the extension
    class the file was renamed *to* — the churn signal.
    """

    op: str
    ext: str
    new_ext: str | None = None

    def __post_init__(self) -> None:
        if self.op not in FS_OPS:
            raise ValueError(f"unknown op {self.op!r}; expected one of {FS_OPS}")
        if self.ext not in EXTENSIONS:
            raise ValueError(f"unknown extension class {self.ext!r}")
        if (self.new_ext is not None) != (self.op == "rename"):
            raise ValueError("new_ext is set exactly for rename events")
        if self.new_ext is not None and self.new_ext not in EXTENSIONS:
            raise ValueError(f"unknown rename target class {self.new_ext!r}")


@dataclasses.dataclass(frozen=True)
class FsEventTrace:
    """One execution's ordered filesystem-event record."""

    events: tuple
    source: str
    variant: int
    is_ransomware: bool

    def __len__(self) -> int:
        return len(self.events)


@dataclasses.dataclass(frozen=True)
class _VariantJitter:
    length_scale: float
    mix_noise: dict


#: Burst kinds a phase mixes over.
_KINDS = (
    "config_probe",      # stat/open/read/close of cfg files (startup, recon)
    "walk",              # stat storms over user extensions (enumeration)
    "doc_session",       # open/read/write/close of one document, no churn
    "encrypt_file",      # open/read/write/rename(ext -> crypt)[/delete]
    "replace_file",      # benign atomic replace: create tmp, write, rename tmp -> ext
    "archive_file",      # read user file, append to tmp container, originals untouched
    "note_drop",         # create doc, write, close (ransom notes, exports)
    "delete_burst",      # delete db/tmp files (shadow/backup destruction)
    "media_stream",      # long read runs on media files
    "temp_churn",        # browser-ish tmp create/write/delete cycles
)

_PHASE_MIXES = {
    "encryption": {"encrypt_file": 6.0, "walk": 1.5, "doc_session": 0.5},
    "infect_and_encrypt": {"encrypt_file": 4.0, "replace_file": 1.5, "walk": 1.0},
    "enumeration": {"walk": 6.0, "config_probe": 1.0},
    "threaded_enumeration": {"walk": 5.0, "doc_session": 1.0},
    "targeted_enumeration": {"walk": 6.0, "config_probe": 1.0},
    "shadow_deletion": {"delete_burst": 5.0, "walk": 1.5},
    "ransom_note": {"note_drop": 5.0, "config_probe": 1.0},
    "spoken_note": {"note_drop": 4.0, "config_probe": 1.5},
    "exfiltration": {"doc_session": 3.0, "walk": 2.0, "media_stream": 1.0},
    "backup_pass": {"replace_file": 4.0, "walk": 2.0, "doc_session": 1.0},
    "archive_job": {"archive_file": 4.5, "walk": 2.0},
    "sync": {"archive_file": 2.0, "walk": 2.5, "doc_session": 1.5},
    "playback": {"media_stream": 6.0, "config_probe": 1.0},
    "browsing": {"temp_churn": 4.0, "config_probe": 1.5},
    "document_work": {"doc_session": 4.0, "config_probe": 1.0},
    "vault_session": {"doc_session": 2.0, "config_probe": 2.0},
    "utility_work": {"config_probe": 3.0, "doc_session": 1.5, "walk": 1.0},
    "ui_session": {"config_probe": 2.0, "temp_churn": 0.5},
    "desktop_misc": {"config_probe": 2.0, "doc_session": 1.5, "temp_churn": 1.0},
}

_LOW_IO_CATEGORIES = ("network", "process", "memory", "synchronization", "service")


def _segment_mix(phase: Phase) -> tuple:
    """``(mix, length_scale)`` — same contract as the block-I/O mapper."""
    mix = _PHASE_MIXES.get(phase.name)
    if mix is not None:
        return dict(mix), 1.0
    weights = phase.category_weights
    total = sum(weights.values())
    file_share = weights.get("file", 0.0) / total
    crypto_share = weights.get("crypto", 0.0) / total
    low_io_share = sum(weights.get(c, 0.0) for c in _LOW_IO_CATEGORIES) / total
    mix = {
        "config_probe": 3.0,
        "walk": 0.5 + 3.0 * file_share,
        "doc_session": 0.5 + 2.0 * file_share,
        "temp_churn": 0.5 + low_io_share,
    }
    if crypto_share > 0.15 and file_share > 0.2:
        mix["encrypt_file"] = 8.0 * crypto_share
    return mix, 1.0 - 0.6 * low_io_share


class FsEventSynthesizer:
    """Renders behaviour profiles as deterministic filesystem-event traces."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    def synthesize_ransomware(
        self, family: FamilyProfile, variant_index: int
    ) -> FsEventTrace:
        """Render one ransomware variant's full filesystem trace."""
        if not 0 <= variant_index < family.variant_count:
            raise ValueError(
                f"{family.name} has {family.variant_count} variants, "
                f"requested index {variant_index}"
            )
        rng = self._rng_for(family.name, variant_index)
        jitter = self._jitter(rng)
        events: list = []
        if family.masquerade_length:
            from repro.ransomware.benign import startup_phase

            self._emit_phase(
                rng, startup_phase(family.masquerade_length), jitter, events
            )
        for phase in family.phases:
            self._emit_phase(rng, phase, jitter, events)
        return FsEventTrace(
            events=tuple(events),
            source=family.name,
            variant=variant_index,
            is_ransomware=True,
        )

    def synthesize_benign(
        self, profile: BenignProfile, run_index: int, target_length: int = 3000
    ) -> FsEventTrace:
        """Render one benign session of roughly ``target_length`` events."""
        if target_length < 1:
            raise ValueError(f"target_length must be positive, got {target_length}")
        rng = self._rng_for(profile.name, run_index)
        jitter = self._jitter(rng)
        events: list = []
        self._emit_phase(rng, profile.startup, jitter, events)
        phase_index = 0
        while len(events) < target_length:
            phase = profile.work_phases[phase_index % len(profile.work_phases)]
            self._emit_phase(rng, phase, jitter, events)
            phase_index += 1
        return FsEventTrace(
            events=tuple(events),
            source=profile.name,
            variant=run_index,
            is_ransomware=False,
        )

    # ------------------------------------------------------------------

    def _rng_for(self, source: str, variant_index: int) -> np.random.Generator:
        material = f"{self.seed}/filesystem/{source}/{variant_index}"
        digest = hashlib.sha256(material.encode()).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "little"))

    @staticmethod
    def _jitter(rng: np.random.Generator) -> _VariantJitter:
        return _VariantJitter(
            length_scale=float(rng.uniform(0.75, 1.3)),
            mix_noise={
                kind: float(np.exp(rng.normal(0.0, 0.2))) for kind in _KINDS
            },
        )

    def _emit_phase(self, rng, phase: Phase, jitter: _VariantJitter,
                    events: list) -> None:
        mix, io_scale = _segment_mix(phase)
        length = max(5, int(round(phase.length * io_scale * jitter.length_scale)))
        kinds = sorted(mix)
        weights = np.array([mix[k] * jitter.mix_noise.get(k, 1.0) for k in kinds])
        weights = weights / weights.sum()
        emitted = 0
        while emitted < length:
            if rng.random() < BACKGROUND_NOISE_RATE:
                burst = _noise(rng)
            else:
                kind = kinds[rng.choice(len(kinds), p=weights)]
                burst = _EMITTERS[kind](rng)
            events.extend(burst)
            emitted += len(burst)


def _user_ext(rng) -> str:
    return _USER_EXTS[int(rng.integers(0, len(_USER_EXTS)))]


def _config_probe(rng) -> list:
    events = [FsEvent("stat", "cfg"), FsEvent("open", "cfg")]
    events.extend(FsEvent("read", "cfg") for _ in range(int(rng.integers(1, 4))))
    events.append(FsEvent("close", "cfg"))
    return events


def _walk(rng) -> list:
    return [FsEvent("stat", _user_ext(rng)) for _ in range(int(rng.integers(2, 7)))]


def _doc_session(rng) -> list:
    ext = _user_ext(rng)
    events = [FsEvent("open", ext)]
    events.extend(FsEvent("read", ext) for _ in range(int(rng.integers(1, 4))))
    if rng.random() < 0.5:
        events.append(FsEvent("write", ext))
    events.append(FsEvent("close", ext))
    return events


def _encrypt_file(rng) -> list:
    """The ransomware burst: rewrite a user file, churn it to ``crypt``."""
    ext = _user_ext(rng)
    events = [
        FsEvent("open", ext),
        FsEvent("read", ext),
        FsEvent("write", ext),
        FsEvent("rename", ext, new_ext="crypt"),
        FsEvent("close", "crypt"),
    ]
    if rng.random() < 0.3:
        events.append(FsEvent("delete", ext))
    return events


def _replace_file(rng) -> list:
    """The benign hard negative: atomic-replace rewrite, churn back."""
    ext = _user_ext(rng)
    return [
        FsEvent("open", ext),
        FsEvent("read", ext),
        FsEvent("create", "tmp"),
        FsEvent("write", "tmp"),
        FsEvent("rename", "tmp", new_ext=ext),
        FsEvent("close", ext),
    ]


def _archive_file(rng) -> list:
    ext = _user_ext(rng)
    return [
        FsEvent("open", ext),
        FsEvent("read", ext),
        FsEvent("write", "tmp"),
        FsEvent("close", ext),
    ]


def _note_drop(rng) -> list:
    return [FsEvent("create", "doc"), FsEvent("write", "doc"), FsEvent("close", "doc")]


def _delete_burst(rng) -> list:
    ext = "db" if rng.random() < 0.6 else "tmp"
    return [FsEvent("delete", ext) for _ in range(int(rng.integers(2, 6)))]


def _media_stream(rng) -> list:
    events = [FsEvent("open", "media")]
    events.extend(FsEvent("read", "media") for _ in range(int(rng.integers(3, 8))))
    return events


def _temp_churn(rng) -> list:
    return [
        FsEvent("create", "tmp"),
        FsEvent("write", "tmp"),
        FsEvent("delete", "tmp"),
    ]


def _noise(rng) -> list:
    op = FS_OPS[int(rng.integers(0, len(FS_OPS)))]
    ext = EXTENSIONS[int(rng.integers(0, len(EXTENSIONS)))]
    if op == "rename":
        return [FsEvent("rename", ext,
                        new_ext=EXTENSIONS[int(rng.integers(0, len(EXTENSIONS)))])]
    return [FsEvent(op, ext)]


_EMITTERS = {
    "config_probe": _config_probe,
    "walk": _walk,
    "doc_session": _doc_session,
    "encrypt_file": _encrypt_file,
    "replace_file": _replace_file,
    "archive_file": _archive_file,
    "note_drop": _note_drop,
    "delete_burst": _delete_burst,
    "media_stream": _media_stream,
    "temp_churn": _temp_churn,
}
