"""Synthetic block-I/O trace generation (IBM block-storage study's signal).

A drive cannot hook Windows APIs; what it *can* see is the block stream:
logical block addresses, transfer sizes, the read/write mix, and — with
inline entropy estimation, as several CSD designs propose — a payload
entropy proxy per write.  Ransomware has a famous signature at this
level: read an extent, write the same extent back at near-maximal
entropy, discard (trim) originals, hop to the next file.  Benign traffic
that *shares* parts of the signature (encrypted backups write
high-entropy data too, but append to a fresh target region instead of
overwriting in place) supplies the hard negatives.

:class:`BlockIoSynthesizer` mirrors
:class:`~repro.ransomware.sandbox.CuckooSandbox`: it walks the *same*
behaviour profiles from :mod:`repro.ransomware.families` /
:mod:`repro.ransomware.benign`, but renders each phase as block-level
activity instead of API calls.  The mapping from phase to I/O behaviour
is a pure function of the phase's name, category weights, and motif
rate — never of the ransomware/benign label — so the per-family
structure (and the deliberate benign overlap, e.g. the shared
``encryption`` phase of backup tools) carries over to this modality.
Traces are deterministic per ``(seed, source, variant)`` via the same
hashed-stream construction the sandbox uses.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from repro.ransomware.benign import BenignProfile
from repro.ransomware.families import FamilyProfile, Phase

#: One logical block is 4 KiB; LBAs index these blocks.
BLOCK_BYTES = 4096

#: Modeled disk size in blocks (1 TiB at 4 KiB/block).
DISK_BLOCKS = 1 << 28

#: Probability of an unrelated interleaved request (other tenants of the
#: drive), mirroring the sandbox's scheduler-noise rate.
BACKGROUND_NOISE_RATE = 0.03

#: Block-I/O operations.
OPS = ("read", "write", "trim", "flush")


@dataclasses.dataclass(frozen=True)
class BlockIoEvent:
    """One block-layer request.

    ``entropy`` is the inline payload-entropy proxy in ``[0, 1]``
    (normalised bytes-of-Shannon-entropy per byte); reads, trims, and
    flushes carry 0.0 by convention.
    """

    op: str
    lba: int
    blocks: int
    entropy: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unknown op {self.op!r}; expected one of {OPS}")
        if not 0 <= self.lba < DISK_BLOCKS:
            raise ValueError(f"lba {self.lba} outside the {DISK_BLOCKS}-block disk")
        if self.blocks < 1 and self.op != "flush":
            raise ValueError(f"{self.op}: blocks must be positive")
        if not 0.0 <= self.entropy <= 1.0:
            raise ValueError(f"entropy {self.entropy} outside [0, 1]")


@dataclasses.dataclass(frozen=True)
class BlockIoTrace:
    """One execution's ordered block-request record."""

    events: tuple
    source: str
    variant: int
    is_ransomware: bool

    def __len__(self) -> int:
        return len(self.events)


@dataclasses.dataclass(frozen=True)
class _DiskLayout:
    """Per-variant disk geometry: where metadata/data/target live."""

    metadata_base: int
    data_base: int
    target_base: int
    extent_blocks: int      # nominal file-extent size


@dataclasses.dataclass(frozen=True)
class _VariantJitter:
    """Per-variant perturbation, mirroring the sandbox's."""

    length_scale: float
    loop_shift: float            # shifts the per-extent loop rate
    mix_noise: dict              # emission kind -> multiplicative factor


#: Emission kinds a phase's I/O segment mixes over.
_KINDS = (
    "meta_read",        # small metadata/registry-backing reads
    "meta_write",       # small low-entropy metadata writes
    "data_read",        # medium sequential reads within an extent
    "stream_read",      # long sequential reads (playback, exfiltration)
    "encrypt_extent",   # read extent -> overwrite in place at high entropy -> trim
    "pack_extent",      # read extent -> append high-entropy copy to target region
    "log_append",       # small sequential low-entropy writes
    "trim_burst",       # large trims + flush (shadow-copy deletion)
    "flush",            # lone flush barrier
)

#: Phase-name → emission mix.  Derived from what the named behaviour does
#: to storage; phases absent here fall back to a category-weight rule.
_PHASE_MIXES = {
    # Encrypting work: the headline pattern.  Note that benign profiles
    # reuse the *same* phase name ("encryption") for AES archive/backup
    # passes, so those benign windows stay indistinguishable by design.
    "encryption": {"encrypt_extent": 6.0, "meta_read": 1.5, "data_read": 1.0},
    "infect_and_encrypt": {"encrypt_extent": 5.0, "data_read": 2.0, "meta_write": 1.0},
    # Directory walks: metadata-read storms.
    "enumeration": {"meta_read": 6.0, "data_read": 1.0},
    "threaded_enumeration": {"meta_read": 5.0, "data_read": 2.0},
    "targeted_enumeration": {"meta_read": 6.0, "data_read": 1.5},
    # Shadow-copy / backup destruction: trims.
    "shadow_deletion": {"trim_burst": 5.0, "meta_read": 2.0, "flush": 1.0},
    # Notes and screen furniture: small writes.
    "ransom_note": {"log_append": 5.0, "meta_write": 2.0, "meta_read": 1.0},
    "spoken_note": {"log_append": 4.0, "meta_read": 2.0},
    "screen_lock": {"meta_read": 3.0, "log_append": 1.0},
    # Exfiltration: bulk reads.
    "exfiltration": {"stream_read": 6.0, "meta_read": 2.0},
    # Benign work phases.
    "backup_pass": {"pack_extent": 5.0, "meta_read": 2.0, "data_read": 1.5},
    "archive_job": {"pack_extent": 4.5, "meta_read": 2.0, "data_read": 1.5},
    "sync": {"pack_extent": 2.0, "stream_read": 3.0, "meta_read": 2.0},
    "playback": {"stream_read": 6.0, "meta_read": 1.0},
    "browsing": {"log_append": 2.5, "meta_read": 2.5, "stream_read": 1.5},
    "document_work": {"meta_read": 2.5, "data_read": 2.0, "log_append": 2.0},
    "vault_session": {"meta_read": 3.0, "data_read": 1.5, "meta_write": 1.0},
    "utility_work": {"meta_read": 4.0, "meta_write": 1.5, "log_append": 1.0},
    "ui_session": {"meta_read": 2.0, "log_append": 1.0},
    "desktop_misc": {"meta_read": 3.0, "log_append": 1.5, "data_read": 1.0},
}

#: Network-dominated phases touch storage barely at all; scale their
#: event budget down instead of inventing disk traffic.
_LOW_IO_CATEGORIES = ("network", "process", "memory", "synchronization", "service")


def _segment_mix(phase: Phase) -> tuple:
    """``(mix, length_scale)`` for one behaviour phase.

    A pure function of the phase's contents, shared by every profile
    (ransomware and benign) so the modality inherits the API dataset's
    hard-negative construction instead of leaking the label.
    """
    mix = _PHASE_MIXES.get(phase.name)
    if mix is not None:
        return dict(mix), 1.0
    weights = phase.category_weights
    total = sum(weights.values())
    file_share = weights.get("file", 0.0) / total
    crypto_share = weights.get("crypto", 0.0) / total
    low_io_share = sum(weights.get(c, 0.0) for c in _LOW_IO_CATEGORIES) / total
    mix = {
        "meta_read": 3.0 + 2.0 * (1.0 - file_share),
        "meta_write": 1.0,
        "log_append": 0.5 + low_io_share,
        "data_read": 0.5 + 4.0 * file_share,
    }
    if crypto_share > 0.15 and file_share > 0.2:
        mix["encrypt_extent"] = 8.0 * crypto_share
    # Phases that live on the network/process side produce sparse I/O.
    length_scale = 1.0 - 0.6 * low_io_share
    return mix, length_scale


class BlockIoSynthesizer:
    """Renders behaviour profiles as deterministic block-I/O traces.

    Parameters
    ----------
    seed:
        Base seed; every ``(source, variant)`` pair derives its own
        stream, so traces are reproducible independent of call order.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed

    # ------------------------------------------------------------------
    # Public API (mirrors CuckooSandbox)
    # ------------------------------------------------------------------

    def synthesize_ransomware(
        self, family: FamilyProfile, variant_index: int
    ) -> BlockIoTrace:
        """Render one ransomware variant's full block-I/O trace."""
        if not 0 <= variant_index < family.variant_count:
            raise ValueError(
                f"{family.name} has {family.variant_count} variants, "
                f"requested index {variant_index}"
            )
        rng = self._rng_for(family.name, variant_index)
        layout = self._layout(rng)
        jitter = self._jitter(rng)
        state = _EmitState(layout)
        events: list = []
        if family.masquerade_length:
            # The dropper's benign-identical prelude, rendered at this
            # level too: ordinary metadata traffic before the payload.
            from repro.ransomware.benign import startup_phase

            self._emit_phase(
                rng, startup_phase(family.masquerade_length), jitter, state, events
            )
        for phase in family.phases:
            self._emit_phase(rng, phase, jitter, state, events)
        return BlockIoTrace(
            events=tuple(events),
            source=family.name,
            variant=variant_index,
            is_ransomware=True,
        )

    def synthesize_benign(
        self, profile: BenignProfile, run_index: int, target_length: int = 3000
    ) -> BlockIoTrace:
        """Render one benign session of roughly ``target_length`` events."""
        if target_length < 1:
            raise ValueError(f"target_length must be positive, got {target_length}")
        rng = self._rng_for(profile.name, run_index)
        layout = self._layout(rng)
        jitter = self._jitter(rng)
        state = _EmitState(layout)
        events: list = []
        self._emit_phase(rng, profile.startup, jitter, state, events)
        phase_index = 0
        while len(events) < target_length:
            phase = profile.work_phases[phase_index % len(profile.work_phases)]
            self._emit_phase(rng, phase, jitter, state, events)
            phase_index += 1
        return BlockIoTrace(
            events=tuple(events),
            source=profile.name,
            variant=run_index,
            is_ransomware=False,
        )

    # ------------------------------------------------------------------
    # Emission machinery
    # ------------------------------------------------------------------

    def _rng_for(self, source: str, variant_index: int) -> np.random.Generator:
        material = f"{self.seed}/block_io/{source}/{variant_index}"
        digest = hashlib.sha256(material.encode()).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "little"))

    @staticmethod
    def _layout(rng: np.random.Generator) -> _DiskLayout:
        quarter = DISK_BLOCKS // 4
        return _DiskLayout(
            metadata_base=int(rng.integers(0, quarter // 2)),
            data_base=int(quarter + rng.integers(0, quarter)),
            target_base=int(3 * quarter + rng.integers(0, quarter // 2)),
            extent_blocks=int(rng.integers(48, 320)),
        )

    @staticmethod
    def _jitter(rng: np.random.Generator) -> _VariantJitter:
        return _VariantJitter(
            length_scale=float(rng.uniform(0.75, 1.3)),
            loop_shift=float(rng.uniform(-0.08, 0.08)),
            mix_noise={
                kind: float(np.exp(rng.normal(0.0, 0.2))) for kind in _KINDS
            },
        )

    def _emit_phase(self, rng, phase: Phase, jitter: _VariantJitter,
                    state: "_EmitState", events: list) -> None:
        mix, io_scale = _segment_mix(phase)
        length = max(5, int(round(phase.length * io_scale * jitter.length_scale)))
        kinds = sorted(mix)
        weights = np.array([mix[k] * jitter.mix_noise.get(k, 1.0) for k in kinds])
        weights = weights / weights.sum()
        emitted = 0
        while emitted < length:
            if rng.random() < BACKGROUND_NOISE_RATE:
                burst = state.noise(rng)
            else:
                kind = kinds[rng.choice(len(kinds), p=weights)]
                burst = getattr(state, kind)(rng)
            events.extend(burst)
            emitted += len(burst)


class _EmitState:
    """Mutable cursor over the modeled disk while one trace renders."""

    def __init__(self, layout: _DiskLayout):
        self.layout = layout
        self.meta_cursor = layout.metadata_base
        self.data_cursor = layout.data_base
        self.target_cursor = layout.target_base

    # Every emitter returns a short list of events (a "burst"); the
    # synthesiser counts events, not bursts, so phase lengths stay
    # comparable to the API modality's call counts.

    def _extent(self, rng) -> tuple:
        """Pick the next file extent to operate on: ``(lba, blocks)``."""
        hop = int(rng.integers(1, 64)) * self.layout.extent_blocks
        self.data_cursor = (
            self.layout.data_base
            + (self.data_cursor - self.layout.data_base + hop) % (DISK_BLOCKS // 4)
        )
        blocks = max(8, int(self.layout.extent_blocks * rng.uniform(0.5, 1.5)))
        return self.data_cursor, blocks

    def meta_read(self, rng) -> list:
        self.meta_cursor = self.layout.metadata_base + int(
            rng.integers(0, DISK_BLOCKS // 64)
        )
        return [BlockIoEvent("read", self.meta_cursor, int(rng.integers(1, 9)))]

    def meta_write(self, rng) -> list:
        return [
            BlockIoEvent(
                "write",
                self.meta_cursor + int(rng.integers(0, 16)),
                int(rng.integers(1, 5)),
                entropy=float(rng.uniform(0.05, 0.45)),
            )
        ]

    def data_read(self, rng) -> list:
        lba, blocks = self._extent(rng)
        chunk = max(1, blocks // int(rng.integers(1, 4)))
        return [BlockIoEvent("read", lba, chunk)]

    def stream_read(self, rng) -> list:
        lba, blocks = self._extent(rng)
        chunks = int(rng.integers(2, 6))
        step = max(1, blocks // chunks)
        return [
            BlockIoEvent("read", lba + i * step, step) for i in range(chunks)
        ]

    def encrypt_extent(self, rng) -> list:
        """The ransomware loop: read, overwrite in place hot, trim tail."""
        lba, blocks = self._extent(rng)
        half = max(1, blocks // 2)
        burst = [
            BlockIoEvent("read", lba, half),
            BlockIoEvent("read", lba + half, blocks - half),
            BlockIoEvent("write", lba, half, entropy=float(rng.uniform(0.92, 1.0))),
            BlockIoEvent("write", lba + half, blocks - half,
                         entropy=float(rng.uniform(0.92, 1.0))),
        ]
        if rng.random() < 0.5:
            burst.append(BlockIoEvent("trim", lba, blocks))
        if rng.random() < 0.2:
            burst.append(BlockIoEvent("flush", lba, 1))
        return burst

    def pack_extent(self, rng) -> list:
        """The benign hard negative: read source, append hot to target."""
        lba, blocks = self._extent(rng)
        self.target_cursor += blocks
        if self.target_cursor >= DISK_BLOCKS:
            self.target_cursor = self.layout.target_base
        return [
            BlockIoEvent("read", lba, blocks),
            BlockIoEvent("write", self.target_cursor, blocks,
                         entropy=float(rng.uniform(0.85, 1.0))),
        ]

    def log_append(self, rng) -> list:
        self.target_cursor += 1
        if self.target_cursor >= DISK_BLOCKS:
            self.target_cursor = self.layout.target_base
        return [
            BlockIoEvent("write", self.target_cursor, int(rng.integers(1, 3)),
                         entropy=float(rng.uniform(0.2, 0.6)))
        ]

    def trim_burst(self, rng) -> list:
        lba, blocks = self._extent(rng)
        return [
            BlockIoEvent("trim", lba, blocks * int(rng.integers(2, 9))),
            BlockIoEvent("flush", lba, 1),
        ]

    def flush(self, rng) -> list:
        return [BlockIoEvent("flush", self.data_cursor, 1)]

    def noise(self, rng) -> list:
        """Another tenant's request interleaved by the drive scheduler."""
        lba = int(rng.integers(0, DISK_BLOCKS))
        if rng.random() < 0.5:
            return [BlockIoEvent("read", lba, int(rng.integers(1, 17)))]
        return [
            BlockIoEvent("write", lba, int(rng.integers(1, 17)),
                         entropy=float(rng.uniform(0.0, 1.0)))
        ]
