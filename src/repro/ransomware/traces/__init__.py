"""Trace front-ends: alternative signal sources for the same detector.

The paper detects ransomware from API-call sequences alone.  Two strands
of follow-up work argue for richer, host-independent signals feeding the
*same* model: IBM's block-storage generalizability study (arXiv
2412.21084) trains on block-level I/O features because API hooks do not
exist inside a drive, and SHIELD (arXiv 2501.16619) shows deep
filesystem features carry family-transferable structure.  This package
adds both as synthetic *trace front-ends*:

* :mod:`repro.ransomware.traces.block_io` — block-I/O traces (LBA
  deltas, read/write mix, per-extent payload-entropy proxies) with a
  deterministic per-family profile model derived from
  :mod:`repro.ransomware.families`;
* :mod:`repro.ransomware.traces.filesystem` — filesystem-event traces
  (open/rename/write/delete bursts, extension churn) from the same
  profiles;
* :mod:`repro.ransomware.traces.adapters` — quantisation of both signal
  types into per-modality token vocabularies, plus dataset builders that
  mirror :func:`repro.ransomware.dataset.build_dataset`.

Every modality produces plain token sequences, so the embedding+LSTM
serving stack — :class:`~repro.core.engine.CSDInferenceEngine`,
:class:`~repro.core.sessions.SessionManager`, and
:meth:`~repro.core.serving.FleetServer.serve_tokens` — serves all three
unchanged; only the vocabulary size (and therefore the trained weights)
differs.  The leave-k-families-out harness over these modalities lives
in :mod:`repro.ransomware.generalization`.
"""

from __future__ import annotations

from repro.ransomware.traces.adapters import (
    BLOCK_IO_VOCABULARY,
    FILESYSTEM_VOCABULARY,
    MODALITIES,
    Modality,
    TokenTrace,
    TraceVocabulary,
    build_block_io_dataset,
    build_filesystem_dataset,
    tokenize_block_trace,
    tokenize_filesystem_trace,
)
from repro.ransomware.traces.block_io import (
    BlockIoEvent,
    BlockIoSynthesizer,
    BlockIoTrace,
)
from repro.ransomware.traces.filesystem import (
    FsEvent,
    FsEventSynthesizer,
    FsEventTrace,
)

__all__ = [
    "BLOCK_IO_VOCABULARY",
    "FILESYSTEM_VOCABULARY",
    "MODALITIES",
    "Modality",
    "TokenTrace",
    "TraceVocabulary",
    "BlockIoEvent",
    "BlockIoSynthesizer",
    "BlockIoTrace",
    "FsEvent",
    "FsEventSynthesizer",
    "FsEventTrace",
    "build_block_io_dataset",
    "build_filesystem_dataset",
    "tokenize_block_trace",
    "tokenize_filesystem_trace",
]
