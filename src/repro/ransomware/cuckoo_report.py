"""Cuckoo Sandbox report interchange.

The paper's dataset pipeline runs samples through Cuckoo Sandbox and
consumes its JSON reports.  This module emits and ingests the slice of
that report format the pipeline needs — the per-process API-call stream
plus summary statistics — so users with *real* Cuckoo output can feed it
to this repository's windowing/training code, and our synthetic traces
can round-trip through the same interchange.

Format (subset of Cuckoo 2.x ``report.json``):

.. code-block:: json

    {
      "info": {"package": "exe", "platform": "windows10", "custom": "Ryuk/0"},
      "target": {"file": {"name": "Ryuk-variant-0"}},
      "behavior": {
        "processes": [{"pid": 1000,
                       "calls": [{"api": "NtCreateFile"}, ...]}],
        "apistats": {"1000": {"NtCreateFile": 12, ...}}
      },
      "repro": {"is_ransomware": true, "variant": 0}
    }

Unknown API names in foreign reports are dropped (with a count returned)
rather than guessed — the vocabulary is fixed by the deployed embedding
table.

Real Cuckoo output is adversarial input: the sample under analysis can
influence the report, and truncated or hand-edited files are common.
Every malformed shape therefore raises :class:`ReportParseError` (a
``ValueError``) with a message naming the offending section — never a
``TypeError``/``AttributeError`` leaking out of the parser internals.
"""

from __future__ import annotations

import collections
import json

from repro.ransomware.api_vocabulary import API_TO_ID
from repro.ransomware.sandbox import ApiTrace


class ReportParseError(ValueError):
    """A Cuckoo-style report is malformed: bad JSON, shape, or types."""


def trace_to_report(trace: ApiTrace, pid: int = 1000) -> dict:
    """Render one trace as a Cuckoo-style report dict."""
    calls = [{"api": name} for name in trace.calls]
    apistats = collections.Counter(trace.calls)
    return {
        "info": {
            "package": "exe",
            "platform": trace.os_version,
            "custom": f"{trace.source}/{trace.variant}",
        },
        "target": {"file": {"name": f"{trace.source}-variant-{trace.variant}"}},
        "behavior": {
            "processes": [{"pid": pid, "calls": calls}],
            "apistats": {str(pid): dict(apistats)},
        },
        "repro": {"is_ransomware": trace.is_ransomware, "variant": trace.variant},
    }


def report_to_trace(report) -> tuple:
    """Parse a Cuckoo-style report back into a trace.

    Returns
    -------
    tuple
        ``(ApiTrace, dropped_calls)`` — calls outside the 278-token
        vocabulary (or whose ``api`` field is not a string) are dropped
        and counted, never remapped.

    Raises
    ------
    ReportParseError
        If the report lacks the behaviour section, contains no calls, or
        any section has the wrong type.  Subclasses ``ValueError``.
    """
    try:
        processes = report["behavior"]["processes"]
    except (KeyError, TypeError):
        raise ReportParseError("report has no behavior.processes section") from None
    if not isinstance(processes, list):
        raise ReportParseError(
            f"behavior.processes must be a list, got {type(processes).__name__}"
        )
    if not processes:
        raise ReportParseError("report contains no processes")

    calls: list = []
    dropped = 0
    for process in processes:
        if not isinstance(process, dict):
            raise ReportParseError(
                f"process entry must be an object, got {type(process).__name__}"
            )
        process_calls = process.get("calls", ())
        if not isinstance(process_calls, (list, tuple)):
            raise ReportParseError(
                f"process calls must be a list, got {type(process_calls).__name__}"
            )
        for call in process_calls:
            if not isinstance(call, dict):
                raise ReportParseError(
                    f"call entry must be an object, got {type(call).__name__}"
                )
            api = call.get("api")
            if isinstance(api, str) and api in API_TO_ID:
                calls.append(api)
            else:
                dropped += 1
    if not calls:
        raise ReportParseError("report contains no in-vocabulary API calls")

    info = report.get("info", {})
    if not isinstance(info, dict):
        raise ReportParseError(
            f"info section must be an object, got {type(info).__name__}"
        )
    custom = info.get("custom", "unknown/0")
    if not isinstance(custom, str):
        raise ReportParseError(
            f"info.custom must be a string, got {type(custom).__name__}"
        )
    platform = info.get("platform", "windows10")
    if not isinstance(platform, str):
        raise ReportParseError(
            f"info.platform must be a string, got {type(platform).__name__}"
        )
    source = custom.split("/")[0] if "/" in custom else custom
    repro_meta = report.get("repro", {})
    if not isinstance(repro_meta, dict):
        raise ReportParseError(
            f"repro section must be an object, got {type(repro_meta).__name__}"
        )
    variant_raw = repro_meta.get("variant", 0)
    try:
        variant = int(variant_raw)
    except (TypeError, ValueError):
        raise ReportParseError(
            f"repro.variant must be an integer, got {variant_raw!r}"
        ) from None
    trace = ApiTrace(
        calls=tuple(calls),
        source=source,
        variant=variant,
        os_version=platform,
        is_ransomware=bool(repro_meta.get("is_ransomware", False)),
    )
    return trace, dropped


def report_from_json(text) -> tuple:
    """Parse the JSON text of a report; returns ``(trace, dropped)``.

    Raises :class:`ReportParseError` for syntactically invalid JSON as
    well as for every structural problem :func:`report_to_trace` rejects,
    so callers ingesting untrusted report files need exactly one
    ``except`` clause.
    """
    try:
        report = json.loads(text)
    except json.JSONDecodeError as error:
        raise ReportParseError(f"report is not valid JSON: {error}") from None
    return report_to_trace(report)


def save_report(trace: ApiTrace, path, pid: int = 1000) -> None:
    """Write a trace's Cuckoo-style report to a JSON file."""
    with open(path, "w") as handle:
        json.dump(trace_to_report(trace, pid=pid), handle)


def load_report(path) -> tuple:
    """Read a Cuckoo-style JSON report; returns ``(trace, dropped)``."""
    with open(path) as handle:
        return report_from_json(handle.read())
