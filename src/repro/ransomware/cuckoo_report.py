"""Cuckoo Sandbox report interchange.

The paper's dataset pipeline runs samples through Cuckoo Sandbox and
consumes its JSON reports.  This module emits and ingests the slice of
that report format the pipeline needs — the per-process API-call stream
plus summary statistics — so users with *real* Cuckoo output can feed it
to this repository's windowing/training code, and our synthetic traces
can round-trip through the same interchange.

Format (subset of Cuckoo 2.x ``report.json``):

.. code-block:: json

    {
      "info": {"package": "exe", "platform": "windows10", "custom": "Ryuk/0"},
      "target": {"file": {"name": "Ryuk-variant-0"}},
      "behavior": {
        "processes": [{"pid": 1000,
                       "calls": [{"api": "NtCreateFile"}, ...]}],
        "apistats": {"1000": {"NtCreateFile": 12, ...}}
      },
      "repro": {"is_ransomware": true, "variant": 0}
    }

Unknown API names in foreign reports are dropped (with a count returned)
rather than guessed — the vocabulary is fixed by the deployed embedding
table.
"""

from __future__ import annotations

import collections
import json

from repro.ransomware.api_vocabulary import API_TO_ID
from repro.ransomware.sandbox import ApiTrace


def trace_to_report(trace: ApiTrace, pid: int = 1000) -> dict:
    """Render one trace as a Cuckoo-style report dict."""
    calls = [{"api": name} for name in trace.calls]
    apistats = collections.Counter(trace.calls)
    return {
        "info": {
            "package": "exe",
            "platform": trace.os_version,
            "custom": f"{trace.source}/{trace.variant}",
        },
        "target": {"file": {"name": f"{trace.source}-variant-{trace.variant}"}},
        "behavior": {
            "processes": [{"pid": pid, "calls": calls}],
            "apistats": {str(pid): dict(apistats)},
        },
        "repro": {"is_ransomware": trace.is_ransomware, "variant": trace.variant},
    }


def report_to_trace(report: dict) -> tuple:
    """Parse a Cuckoo-style report back into a trace.

    Returns
    -------
    tuple
        ``(ApiTrace, dropped_calls)`` — calls outside the 278-token
        vocabulary are dropped and counted, never remapped.

    Raises
    ------
    ValueError
        If the report lacks the behaviour section or contains no calls.
    """
    try:
        processes = report["behavior"]["processes"]
    except (KeyError, TypeError):
        raise ValueError("report has no behavior.processes section") from None
    if not processes:
        raise ValueError("report contains no processes")

    calls: list = []
    dropped = 0
    for process in processes:
        for call in process.get("calls", ()):
            api = call.get("api")
            if api in API_TO_ID:
                calls.append(api)
            else:
                dropped += 1
    if not calls:
        raise ValueError("report contains no in-vocabulary API calls")

    info = report.get("info", {})
    custom = info.get("custom", "unknown/0")
    source = custom.split("/")[0] if "/" in custom else custom
    repro_meta = report.get("repro", {})
    trace = ApiTrace(
        calls=tuple(calls),
        source=source,
        variant=int(repro_meta.get("variant", 0)),
        os_version=info.get("platform", "windows10"),
        is_ransomware=bool(repro_meta.get("is_ransomware", False)),
    )
    return trace, dropped


def save_report(trace: ApiTrace, path, pid: int = 1000) -> None:
    """Write a trace's Cuckoo-style report to a JSON file."""
    with open(path, "w") as handle:
        json.dump(trace_to_report(trace, pid=pid), handle)


def load_report(path) -> tuple:
    """Read a Cuckoo-style JSON report; returns ``(trace, dropped)``."""
    with open(path) as handle:
        return report_to_trace(json.load(handle))
