"""Multi-process host replay and attack-scenario replays.

A real system housing a CSD observes an *interleaved* stream of events
from many processes at once — benign applications doing their work with
(possibly) one ransomware process hiding among them.  The detector must
track a sliding window **per process** (a global window would smear the
malicious pattern across innocent calls), and mitigation must quarantine
only the offending process.

Two front ends share that machinery:

* :class:`HostReplay` — the original API-call replay over
  :class:`~repro.response.legacy.ProtectedStorage`, now driven by the
  response policy engine (quarantine-only policy, hash-chained audit);
* :class:`ScenarioReplay` — full attack scenarios over any of the three
  :data:`~repro.ransomware.traces.adapters.MODALITIES`, writing real
  payload bytes through the self-protecting
  :class:`~repro.hw.smartssd.SmartSSD` path (copy-on-write snapshots,
  write-blocking, restore) under a graduated
  :class:`~repro.response.policy.ResponsePolicy`.  This is the
  data-loss benchmark's engine (``benchmarks/bench_response.py``).

Scenario traces are synthesised with the family's masquerade prelude
stripped (``masquerade_length=0``): the replay measures *response*
latency from attack onset, and the dropper's benign-identical prelude
would otherwise just add a constant number of benign tokens in front of
every run.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from repro.hw.smartssd import WriteRefused
from repro.ransomware.benign import ALL_BENIGN_PROFILES
from repro.ransomware.detector import Verdict
from repro.ransomware.families import ALL_FAMILIES
from repro.ransomware.monitor import ProcessMonitor
from repro.ransomware.sandbox import ApiTrace, CuckooSandbox
from repro.ransomware.traces.adapters import MODALITIES
from repro.ransomware.traces.block_io import BlockIoSynthesizer
from repro.ransomware.traces.filesystem import FsEventSynthesizer
from repro.response.audit import AuditLog
from repro.response.legacy import MitigationEngine, ProtectedStorage
from repro.response.policy import (
    ACTION_WRITE_BLOCK,
    ESCALATION_LADDER,
    ResponseEngine,
    ResponsePolicy,
    SmartSsdEnforcer,
)

#: Modelled bytes per write event, by modality.  The API and filesystem
#: modalities do not carry sizes, so a fixed per-call cost stands in
#: (one 16 KiB buffered ``NtWriteFile``; one 32 KiB file rewrite);
#: block-I/O events carry their true transfer size.
API_WRITE_BYTES = 16 * 1024
FS_WRITE_BYTES = 32 * 1024
BLOCK_BYTES = 4096

_RANK = {action: rank for rank, action in enumerate(ESCALATION_LADDER)}


@dataclasses.dataclass(frozen=True)
class ReplayEvent:
    """One observed call in the interleaved schedule."""

    step: int
    process_id: int
    call: str


@dataclasses.dataclass
class ProcessOutcome:
    """Per-process results of a replay."""

    process_id: int
    source: str
    is_ransomware: bool
    calls_replayed: int = 0
    writes_admitted: int = 0
    writes_blocked: int = 0
    quarantined_at_step: int | None = None
    first_verdict: Verdict | None = None


class PerProcessDetectorBank:
    """One sliding window per monitored process, sharing one engine.

    Backed by the streaming session subsystem
    (:class:`~repro.ransomware.monitor.ProcessMonitor` over a
    :class:`~repro.core.sessions.SessionManager`): each process carries
    incremental LSTM state instead of re-running ``infer_sequence`` per
    window, and — unlike the original one-detector-per-pid dict that
    grew without bound — idle or excess processes are *evicted* under
    ``memory_budget_bytes``/``idle_after_steps`` (checkpointed, counted
    by ``repro_session_evictions_total``) and exited ones can be
    :meth:`close`\\ d.  Verdicts are bit-exact with the recompute path.
    """

    def __init__(self, engine, threshold: float = 0.5, stride: int = 10,
                 memory_budget_bytes: int | None = None,
                 idle_after_steps: int | None = None):
        self._monitor = ProcessMonitor(
            engine, threshold=threshold, stride=stride,
            memory_budget_bytes=memory_budget_bytes,
            idle_after_steps=idle_after_steps,
        )

    def observe(self, process_id: int, call: str) -> Verdict | None:
        return self._monitor.observe(process_id, call)

    def close(self, process_id: int) -> None:
        """Drop an exited process's stream state."""
        self._monitor.close(process_id)

    def stats(self) -> dict:
        """Session-layer counters (evictions, restores, residency)."""
        return self._monitor.stats()

    @property
    def monitored_processes(self) -> tuple:
        return self._monitor.monitored_processes


def interleave_traces(lengths, seed: int = 0) -> list:
    """Deterministic weighted interleaving of per-trace cursors.

    Returns a list of trace indices — one entry per event, preserving
    each trace's internal order, with the next trace drawn proportional
    to its remaining length (long traces keep emitting, short ones
    finish naturally).
    """
    rng = np.random.default_rng(seed)
    remaining = [int(length) for length in lengths]
    order: list = []
    while any(remaining):
        weights = np.array(remaining, dtype=np.float64)
        index = int(rng.choice(len(remaining), p=weights / weights.sum()))
        order.append(index)
        remaining[index] -= 1
    return order


class HostReplay:
    """Interleaves sandbox traces and drives detection + mitigation.

    Parameters
    ----------
    engine:
        A loaded CSD inference engine.
    storage:
        The protected storage the processes write to.
    threshold / stride:
        Detector parameters (shared by the per-process bank).
    """

    def __init__(self, engine, storage: ProtectedStorage,
                 threshold: float = 0.5, stride: int = 10,
                 confirmations: int = 3,
                 memory_budget_bytes: int | None = None,
                 idle_after_steps: int | None = None):
        self.bank = PerProcessDetectorBank(
            engine, threshold, stride,
            memory_budget_bytes=memory_budget_bytes,
            idle_after_steps=idle_after_steps,
        )
        self.storage = storage
        self.mitigation = MitigationEngine(storage, confirmations=confirmations)

    @property
    def audit(self) -> AuditLog:
        """The hash-chained audit log behind the mitigation engine."""
        return self.mitigation.audit

    @staticmethod
    def interleave(traces, seed: int = 0) -> list:
        """Randomly interleave traces preserving each one's call order.

        Returns a list of :class:`ReplayEvent`, with process ids assigned
        by trace position (pid = 1000 + index).
        """
        cursors = [0] * len(traces)
        events: list = []
        order = interleave_traces([len(trace.calls) for trace in traces], seed)
        for step, process_index in enumerate(order):
            trace = traces[process_index]
            call = trace.calls[cursors[process_index]]
            events.append(ReplayEvent(step=step, process_id=1000 + process_index, call=call))
            cursors[process_index] += 1
        return events

    def run(self, traces, seed: int = 0, write_bytes: int = API_WRITE_BYTES) -> dict:
        """Replay interleaved traces; returns pid → :class:`ProcessOutcome`.

        Every ``NtWriteFile``/``WriteFile`` in a trace becomes a storage
        write attributed to its process; detector verdicts feed the
        mitigation engine, which quarantines per process.
        """
        traces = list(traces)
        outcomes = {
            1000 + index: ProcessOutcome(
                process_id=1000 + index,
                source=trace.source,
                is_ransomware=trace.is_ransomware,
            )
            for index, trace in enumerate(traces)
        }
        for event in self.interleave(traces, seed=seed):
            outcome = outcomes[event.process_id]
            outcome.calls_replayed += 1
            if event.call in ("NtWriteFile", "WriteFile"):
                try:
                    self.storage.write(
                        event.process_id, f"pid{event.process_id}-{event.step}",
                        write_bytes,
                    )
                    outcome.writes_admitted += 1
                except WriteRefused:
                    outcome.writes_blocked += 1
            verdict = self.bank.observe(event.process_id, event.call)
            if verdict is None:
                continue
            if self.mitigation.handle_verdict(event.process_id, verdict):
                if outcome.quarantined_at_step is None:
                    outcome.quarantined_at_step = event.step
                    outcome.first_verdict = verdict
        return outcomes

    def incident_summary(self, outcomes: dict) -> dict:
        """Aggregate detection quality over a replay's outcomes."""
        ransomware = [o for o in outcomes.values() if o.is_ransomware]
        benign = [o for o in outcomes.values() if not o.is_ransomware]
        caught = [o for o in ransomware if o.quarantined_at_step is not None]
        falsely_quarantined = [o for o in benign if o.quarantined_at_step is not None]
        return {
            "ransomware_processes": len(ransomware),
            "caught": len(caught),
            "benign_processes": len(benign),
            "falsely_quarantined": len(falsely_quarantined),
            "writes_blocked": sum(o.writes_blocked for o in outcomes.values()),
            "benign_writes_admitted": sum(o.writes_admitted for o in benign),
        }


# ----------------------------------------------------------------------
# Attack scenarios (all three modalities)
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class ScenarioStream:
    """One process's tokenised trace plus its per-event write schedule.

    ``tokens`` and ``write_bytes`` are aligned 1:1 (every tokenizer in
    :mod:`repro.ransomware.traces.adapters` emits exactly one token per
    event); ``write_bytes[i]`` is 0 for non-write events.
    """

    name: str
    source: str
    is_ransomware: bool
    tokens: tuple
    write_bytes: tuple

    def __post_init__(self) -> None:
        if len(self.tokens) != len(self.write_bytes):
            raise ValueError(
                f"{self.name}: {len(self.tokens)} tokens vs "
                f"{len(self.write_bytes)} write-bytes entries"
            )

    def __len__(self) -> int:
        return len(self.tokens)

    @property
    def total_write_bytes(self) -> int:
        return int(sum(self.write_bytes))


def _api_stream(name, trace: ApiTrace) -> ScenarioStream:
    vocabulary = MODALITIES["api"].vocabulary
    return ScenarioStream(
        name=name, source=trace.source, is_ransomware=trace.is_ransomware,
        tokens=tuple(vocabulary.encode(trace.calls)),
        write_bytes=tuple(
            API_WRITE_BYTES if call in ("NtWriteFile", "WriteFile") else 0
            for call in trace.calls
        ),
    )


def _block_stream(name, trace) -> ScenarioStream:
    from repro.ransomware.traces.adapters import tokenize_block_trace

    return ScenarioStream(
        name=name, source=trace.source, is_ransomware=trace.is_ransomware,
        tokens=tokenize_block_trace(trace).token_ids,
        write_bytes=tuple(
            event.blocks * BLOCK_BYTES if event.op == "write" else 0
            for event in trace.events
        ),
    )


def _fs_stream(name, trace) -> ScenarioStream:
    from repro.ransomware.traces.adapters import tokenize_filesystem_trace

    return ScenarioStream(
        name=name, source=trace.source, is_ransomware=trace.is_ransomware,
        tokens=tokenize_filesystem_trace(trace).token_ids,
        write_bytes=tuple(
            FS_WRITE_BYTES if event.op == "write" else 0
            for event in trace.events
        ),
    )


def build_scenario(modality: str = "api", ransomware: int = 1,
                   benign: int = 3, seed: int = 0,
                   benign_length: int = 400,
                   strip_masquerade: bool = True) -> list:
    """Synthesise one attack scenario: a list of :class:`ScenarioStream`.

    ``ransomware`` variants are drawn from :data:`ALL_FAMILIES` in order
    (family ``i % len``, variant ``i // len``); ``benign`` sessions from
    :data:`ALL_BENIGN_PROFILES` likewise.  With ``strip_masquerade`` the
    dropper's benign-identical prelude is removed so the replay measures
    response latency from attack onset (the masquerade adds a constant
    benign prefix, not information).
    """
    if modality not in MODALITIES:
        raise ValueError(
            f"unknown modality {modality!r}; expected one of {sorted(MODALITIES)}"
        )
    if modality == "api":
        synthesizer = CuckooSandbox(seed=seed)
        make_ransomware = synthesizer.execute_ransomware
        make_benign = synthesizer.execute_benign
        to_stream = _api_stream
    elif modality == "block_io":
        synthesizer = BlockIoSynthesizer(seed=seed)
        make_ransomware = synthesizer.synthesize_ransomware
        make_benign = synthesizer.synthesize_benign
        to_stream = _block_stream
    else:
        synthesizer = FsEventSynthesizer(seed=seed)
        make_ransomware = synthesizer.synthesize_ransomware
        make_benign = synthesizer.synthesize_benign
        to_stream = _fs_stream

    streams: list = []
    for index in range(ransomware):
        family = ALL_FAMILIES[index % len(ALL_FAMILIES)]
        if strip_masquerade and family.masquerade_length:
            family = dataclasses.replace(family, masquerade_length=0)
        variant = (index // len(ALL_FAMILIES)) % family.variant_count
        trace = make_ransomware(family, variant)
        streams.append(
            to_stream(f"rw-{index}-{family.name.lower()}", trace)
        )
    for index in range(benign):
        profile = ALL_BENIGN_PROFILES[index % len(ALL_BENIGN_PROFILES)]
        trace = make_benign(profile, index, target_length=benign_length)
        streams.append(
            to_stream(f"benign-{index}-{profile.name.lower()}", trace)
        )
    return streams


@dataclasses.dataclass
class StreamOutcome:
    """Per-stream results of a scenario replay."""

    name: str
    source: str
    is_ransomware: bool
    tokens_replayed: int = 0
    writes_admitted: int = 0
    writes_blocked: int = 0
    bytes_admitted: int = 0
    bytes_blocked: int = 0
    write_seconds: float = 0.0
    final_action: str = "observe"
    enforced_at_step: int | None = None
    enforced_window_index: int | None = None
    first_probability: float | None = None

    @property
    def detection_latency_tokens(self) -> int | None:
        """Stream tokens past the first complete window at enforcement.

        The window index of the enforcing verdict **is** that latency:
        window 0 completes after ``window_length`` tokens, and each
        subsequent token advances the index by one.
        """
        return self.enforced_window_index


def _payload(name: str, position: int, num_bytes: int) -> bytes:
    """Deterministic per-write payload (so restores are byte-checkable)."""
    digest = hashlib.sha256(f"{name}:{position}".encode("utf-8")).digest()
    return (digest * (num_bytes // len(digest) + 1))[:num_bytes]


class ScenarioReplay:
    """Replays an attack scenario through monitor + response + SmartSSD.

    The closed loop of ``docs/response.md``: stream tokens feed a
    :class:`~repro.ransomware.monitor.ProcessMonitor`, verdicts feed a
    :class:`~repro.response.policy.ResponseEngine`, and enforcement
    lands on the :class:`~repro.hw.smartssd.SmartSSD` the streams are
    writing to (copy-on-write preservation at first alert,
    write-blocking at escalation, snapshot restore if the policy allows
    it).  Fully deterministic: one seed → bit-identical outcomes,
    storage state, and audit log.

    Parameters
    ----------
    engine:
        A loaded CSD inference engine trained on the scenario's modality.
    storage:
        The :class:`~repro.hw.smartssd.SmartSSD` whose volume is at
        stake.
    policy:
        The :class:`~repro.response.policy.ResponsePolicy`; default
        thresholds with two confirmations.
    monitor_threshold / stride:
        Detector parameters (``is_ransomware`` on the verdicts the
        policy consumes).
    telemetry:
        Optional; forwarded to the response engine (``repro_resp_*``).
    """

    def __init__(self, engine, storage, policy: ResponsePolicy | None = None,
                 monitor_threshold: float = 0.5, stride: int = 10,
                 telemetry=None, audit: AuditLog | None = None):
        self.engine = engine
        self.storage = storage
        self.monitor = ProcessMonitor(
            engine, threshold=monitor_threshold, stride=stride
        )
        self.responder = ResponseEngine(
            policy=policy, enforcer=SmartSsdEnforcer(storage),
            engine=engine, audit=audit, telemetry=telemetry,
        )

    @property
    def audit(self) -> AuditLog:
        return self.responder.audit

    def seed_user_objects(self, count: int = 16,
                          num_bytes: int = 64 * 1024) -> list:
        """Populate the volume with the user data ransomware will target."""
        keys = []
        for index in range(count):
            key = f"user-{index:04d}"
            self.storage.ssd.write_object(
                key, num_bytes, data=_payload(key, 0, num_bytes)
            )
            keys.append(key)
        return keys

    def run(self, streams, seed: int = 0, user_keys=None) -> dict:
        """Replay interleaved streams; returns name → :class:`StreamOutcome`.

        Ransomware streams overwrite the seeded user objects round-robin
        (the encryption pass); benign streams write fresh objects of
        their own.  Write first, then observe — the damage a write does
        is not undone by the verdict its own token triggers; that is
        what the copy-on-write pre-images are for.
        """
        streams = list(streams)
        user_keys = list(user_keys or [])
        outcomes = {
            stream.name: StreamOutcome(
                name=stream.name, source=stream.source,
                is_ransomware=stream.is_ransomware,
            )
            for stream in streams
        }
        cursors = [0] * len(streams)
        overwrite_cursor = 0
        for step, index in enumerate(
            interleave_traces([len(s) for s in streams], seed)
        ):
            stream = streams[index]
            position = cursors[index]
            cursors[index] += 1
            outcome = outcomes[stream.name]
            outcome.tokens_replayed += 1
            num_bytes = stream.write_bytes[position]
            if num_bytes:
                if stream.is_ransomware and user_keys:
                    key = user_keys[overwrite_cursor % len(user_keys)]
                    overwrite_cursor += 1
                else:
                    key = f"{stream.name}-out-{position}"
                try:
                    outcome.write_seconds += self.storage.stream_write(
                        stream.name, key, num_bytes,
                        data=_payload(stream.name, position, num_bytes),
                    )
                    outcome.writes_admitted += 1
                    outcome.bytes_admitted += num_bytes
                except WriteRefused:
                    outcome.writes_blocked += 1
                    outcome.bytes_blocked += num_bytes
            token = stream.tokens[position]
            self.responder.observe_token(stream.name, token)
            verdict = self.monitor.observe(stream.name, token)
            if verdict is None:
                continue
            decision = self.responder.on_verdict(stream.name, verdict)
            outcome.final_action = decision.action
            if (decision.escalated
                    and _RANK[decision.action] >= _RANK[ACTION_WRITE_BLOCK]
                    and outcome.enforced_at_step is None):
                outcome.enforced_at_step = step
                outcome.enforced_window_index = verdict.window_index
                outcome.first_probability = verdict.probability
        return outcomes

    def report(self, outcomes: dict) -> dict:
        """Aggregate a replay: detection, data loss, storage, audit."""
        ransomware = [o for o in outcomes.values() if o.is_ransomware]
        benign = [o for o in outcomes.values() if not o.is_ransomware]
        enforced = [o for o in ransomware if o.enforced_at_step is not None]
        latencies = sorted(
            o.detection_latency_tokens for o in enforced
        )
        self.audit.verify()
        return {
            "ransomware_streams": len(ransomware),
            "enforced": len(enforced),
            "benign_streams": len(benign),
            "benign_writes_blocked": sum(o.writes_blocked for o in benign),
            "benign_bytes_blocked": sum(o.bytes_blocked for o in benign),
            "detection_latency_tokens": latencies,
            "bytes_blocked": sum(o.bytes_blocked for o in ransomware),
            "bytes_admitted_ransomware": sum(o.bytes_admitted for o in ransomware),
            "write_seconds": sum(o.write_seconds for o in outcomes.values()),
            "storage": self.storage.protection_summary(),
            "response": self.responder.summary(),
            "audit_head": self.audit.head_hash,
            "audit_stream_heads": self.audit.stream_heads(),
        }


def data_loss_accounting(streams, enforcement_at_tokens: dict) -> dict:
    """Modelled data-loss split, independent of cross-stream timing.

    ``enforcement_at_tokens`` maps stream name → the number of the
    stream's *own* tokens processed when its writes stopped (``None`` or
    missing = never enforced).  Because it is computed from each
    stream's write schedule and a stream-local cut point, the accounting
    is invariant under fleet failovers and interleaving shifts — the
    same property the per-stream audit chains have.

    Returns per-stream ``{exposed, prevented}`` byte counts plus
    ransomware/benign totals; ``prevented`` is what enforcement stopped,
    ``exposed`` what landed first (recoverable from copy-on-write
    pre-images when protection was armed in time).
    """
    per_stream: dict = {}
    totals = {
        "ransomware_bytes_prevented": 0,
        "ransomware_bytes_exposed": 0,
        "benign_bytes_prevented": 0,
    }
    for stream in streams:
        cut = enforcement_at_tokens.get(stream.name)
        total = stream.total_write_bytes
        if cut is None:
            exposed, prevented = total, 0
        else:
            exposed = int(sum(stream.write_bytes[:max(0, int(cut))]))
            prevented = total - exposed
        per_stream[stream.name] = {
            "is_ransomware": stream.is_ransomware,
            "total_bytes": total,
            "exposed_bytes": exposed,
            "prevented_bytes": prevented,
        }
        if stream.is_ransomware:
            totals["ransomware_bytes_prevented"] += prevented
            totals["ransomware_bytes_exposed"] += exposed
        else:
            totals["benign_bytes_prevented"] += prevented
    return {"per_stream": per_stream, **totals}
