"""Multi-process host replay: the realistic deployment scenario.

A real system housing a CSD observes an *interleaved* stream of API calls
from many processes at once — benign applications doing their work with
(possibly) one ransomware process hiding among them.  The detector must
track a sliding window **per process** (a global window would smear the
malicious pattern across innocent calls), and mitigation must quarantine
only the offending process.

:class:`HostReplay` builds such an interleaved schedule from sandbox
traces and drives a per-process detector bank plus the mitigation engine,
producing the incident timeline the paper's "real-time mitigation" story
implies.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.ransomware.detector import RansomwareDetector, Verdict
from repro.ransomware.mitigation import MitigationEngine, ProtectedStorage, WriteBlocked
from repro.ransomware.sandbox import ApiTrace


@dataclasses.dataclass(frozen=True)
class ReplayEvent:
    """One observed call in the interleaved schedule."""

    step: int
    process_id: int
    call: str


@dataclasses.dataclass
class ProcessOutcome:
    """Per-process results of a replay."""

    process_id: int
    source: str
    is_ransomware: bool
    calls_replayed: int = 0
    writes_admitted: int = 0
    writes_blocked: int = 0
    quarantined_at_step: int | None = None
    first_verdict: Verdict | None = None


class PerProcessDetectorBank:
    """One sliding window per monitored process, sharing one engine."""

    def __init__(self, engine, threshold: float = 0.5, stride: int = 10):
        self._engine = engine
        self._threshold = threshold
        self._stride = stride
        self._detectors: dict = {}

    def observe(self, process_id: int, call: str) -> Verdict | None:
        detector = self._detectors.get(process_id)
        if detector is None:
            detector = RansomwareDetector(
                self._engine, threshold=self._threshold, stride=self._stride
            )
            self._detectors[process_id] = detector
        return detector.observe(call)

    @property
    def monitored_processes(self) -> tuple:
        return tuple(self._detectors)


class HostReplay:
    """Interleaves sandbox traces and drives detection + mitigation.

    Parameters
    ----------
    engine:
        A loaded CSD inference engine.
    storage:
        The protected storage the processes write to.
    threshold / stride:
        Detector parameters (shared by the per-process bank).
    """

    def __init__(self, engine, storage: ProtectedStorage,
                 threshold: float = 0.5, stride: int = 10,
                 confirmations: int = 3):
        self.bank = PerProcessDetectorBank(engine, threshold, stride)
        self.storage = storage
        self.mitigation = MitigationEngine(storage, confirmations=confirmations)

    @staticmethod
    def interleave(traces, seed: int = 0) -> list:
        """Randomly interleave traces preserving each one's call order.

        Returns a list of :class:`ReplayEvent`, with process ids assigned
        by trace position (pid = 1000 + index).
        """
        rng = np.random.default_rng(seed)
        cursors = [0] * len(traces)
        remaining = [len(trace.calls) for trace in traces]
        events: list = []
        step = 0
        while any(remaining):
            weights = np.array(remaining, dtype=np.float64)
            process_index = int(rng.choice(len(traces), p=weights / weights.sum()))
            trace = traces[process_index]
            call = trace.calls[cursors[process_index]]
            events.append(ReplayEvent(step=step, process_id=1000 + process_index, call=call))
            cursors[process_index] += 1
            remaining[process_index] -= 1
            step += 1
        return events

    def run(self, traces, seed: int = 0, write_bytes: int = 16 * 1024) -> dict:
        """Replay interleaved traces; returns pid → :class:`ProcessOutcome`.

        Every ``NtWriteFile``/``WriteFile`` in a trace becomes a storage
        write attributed to its process; detector verdicts feed the
        mitigation engine, which quarantines per process.
        """
        traces = list(traces)
        outcomes = {
            1000 + index: ProcessOutcome(
                process_id=1000 + index,
                source=trace.source,
                is_ransomware=trace.is_ransomware,
            )
            for index, trace in enumerate(traces)
        }
        for event in self.interleave(traces, seed=seed):
            outcome = outcomes[event.process_id]
            outcome.calls_replayed += 1
            if event.call in ("NtWriteFile", "WriteFile"):
                try:
                    self.storage.write(
                        event.process_id, f"pid{event.process_id}-{event.step}",
                        write_bytes,
                    )
                    outcome.writes_admitted += 1
                except WriteBlocked:
                    outcome.writes_blocked += 1
            verdict = self.bank.observe(event.process_id, event.call)
            if verdict is None:
                continue
            if self.mitigation.handle_verdict(event.process_id, verdict):
                if outcome.quarantined_at_step is None:
                    outcome.quarantined_at_step = event.step
                    outcome.first_verdict = verdict
        return outcomes

    def incident_summary(self, outcomes: dict) -> dict:
        """Aggregate detection quality over a replay's outcomes."""
        ransomware = [o for o in outcomes.values() if o.is_ransomware]
        benign = [o for o in outcomes.values() if not o.is_ransomware]
        caught = [o for o in ransomware if o.quarantined_at_step is not None]
        falsely_quarantined = [o for o in benign if o.quarantined_at_step is not None]
        return {
            "ransomware_processes": len(ransomware),
            "caught": len(caught),
            "benign_processes": len(benign),
            "falsely_quarantined": len(falsely_quarantined),
            "writes_blocked": sum(o.writes_blocked for o in outcomes.values()),
            "benign_writes_admitted": sum(o.writes_admitted for o in benign),
        }
