"""Multi-process host replay: the realistic deployment scenario.

A real system housing a CSD observes an *interleaved* stream of API calls
from many processes at once — benign applications doing their work with
(possibly) one ransomware process hiding among them.  The detector must
track a sliding window **per process** (a global window would smear the
malicious pattern across innocent calls), and mitigation must quarantine
only the offending process.

:class:`HostReplay` builds such an interleaved schedule from sandbox
traces and drives a per-process detector bank plus the mitigation engine,
producing the incident timeline the paper's "real-time mitigation" story
implies.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.ransomware.detector import Verdict
from repro.ransomware.mitigation import MitigationEngine, ProtectedStorage, WriteBlocked
from repro.ransomware.monitor import ProcessMonitor
from repro.ransomware.sandbox import ApiTrace


@dataclasses.dataclass(frozen=True)
class ReplayEvent:
    """One observed call in the interleaved schedule."""

    step: int
    process_id: int
    call: str


@dataclasses.dataclass
class ProcessOutcome:
    """Per-process results of a replay."""

    process_id: int
    source: str
    is_ransomware: bool
    calls_replayed: int = 0
    writes_admitted: int = 0
    writes_blocked: int = 0
    quarantined_at_step: int | None = None
    first_verdict: Verdict | None = None


class PerProcessDetectorBank:
    """One sliding window per monitored process, sharing one engine.

    Backed by the streaming session subsystem
    (:class:`~repro.ransomware.monitor.ProcessMonitor` over a
    :class:`~repro.core.sessions.SessionManager`): each process carries
    incremental LSTM state instead of re-running ``infer_sequence`` per
    window, and — unlike the original one-detector-per-pid dict that
    grew without bound — idle or excess processes are *evicted* under
    ``memory_budget_bytes``/``idle_after_steps`` (checkpointed, counted
    by ``repro_session_evictions_total``) and exited ones can be
    :meth:`close`\\ d.  Verdicts are bit-exact with the recompute path.
    """

    def __init__(self, engine, threshold: float = 0.5, stride: int = 10,
                 memory_budget_bytes: int | None = None,
                 idle_after_steps: int | None = None):
        self._monitor = ProcessMonitor(
            engine, threshold=threshold, stride=stride,
            memory_budget_bytes=memory_budget_bytes,
            idle_after_steps=idle_after_steps,
        )

    def observe(self, process_id: int, call: str) -> Verdict | None:
        return self._monitor.observe(process_id, call)

    def close(self, process_id: int) -> None:
        """Drop an exited process's stream state."""
        self._monitor.close(process_id)

    def stats(self) -> dict:
        """Session-layer counters (evictions, restores, residency)."""
        return self._monitor.stats()

    @property
    def monitored_processes(self) -> tuple:
        return self._monitor.monitored_processes


class HostReplay:
    """Interleaves sandbox traces and drives detection + mitigation.

    Parameters
    ----------
    engine:
        A loaded CSD inference engine.
    storage:
        The protected storage the processes write to.
    threshold / stride:
        Detector parameters (shared by the per-process bank).
    """

    def __init__(self, engine, storage: ProtectedStorage,
                 threshold: float = 0.5, stride: int = 10,
                 confirmations: int = 3,
                 memory_budget_bytes: int | None = None,
                 idle_after_steps: int | None = None):
        self.bank = PerProcessDetectorBank(
            engine, threshold, stride,
            memory_budget_bytes=memory_budget_bytes,
            idle_after_steps=idle_after_steps,
        )
        self.storage = storage
        self.mitigation = MitigationEngine(storage, confirmations=confirmations)

    @staticmethod
    def interleave(traces, seed: int = 0) -> list:
        """Randomly interleave traces preserving each one's call order.

        Returns a list of :class:`ReplayEvent`, with process ids assigned
        by trace position (pid = 1000 + index).
        """
        rng = np.random.default_rng(seed)
        cursors = [0] * len(traces)
        remaining = [len(trace.calls) for trace in traces]
        events: list = []
        step = 0
        while any(remaining):
            weights = np.array(remaining, dtype=np.float64)
            process_index = int(rng.choice(len(traces), p=weights / weights.sum()))
            trace = traces[process_index]
            call = trace.calls[cursors[process_index]]
            events.append(ReplayEvent(step=step, process_id=1000 + process_index, call=call))
            cursors[process_index] += 1
            remaining[process_index] -= 1
            step += 1
        return events

    def run(self, traces, seed: int = 0, write_bytes: int = 16 * 1024) -> dict:
        """Replay interleaved traces; returns pid → :class:`ProcessOutcome`.

        Every ``NtWriteFile``/``WriteFile`` in a trace becomes a storage
        write attributed to its process; detector verdicts feed the
        mitigation engine, which quarantines per process.
        """
        traces = list(traces)
        outcomes = {
            1000 + index: ProcessOutcome(
                process_id=1000 + index,
                source=trace.source,
                is_ransomware=trace.is_ransomware,
            )
            for index, trace in enumerate(traces)
        }
        for event in self.interleave(traces, seed=seed):
            outcome = outcomes[event.process_id]
            outcome.calls_replayed += 1
            if event.call in ("NtWriteFile", "WriteFile"):
                try:
                    self.storage.write(
                        event.process_id, f"pid{event.process_id}-{event.step}",
                        write_bytes,
                    )
                    outcome.writes_admitted += 1
                except WriteBlocked:
                    outcome.writes_blocked += 1
            verdict = self.bank.observe(event.process_id, event.call)
            if verdict is None:
                continue
            if self.mitigation.handle_verdict(event.process_id, verdict):
                if outcome.quarantined_at_step is None:
                    outcome.quarantined_at_step = event.step
                    outcome.first_verdict = verdict
        return outcomes

    def incident_summary(self, outcomes: dict) -> dict:
        """Aggregate detection quality over a replay's outcomes."""
        ransomware = [o for o in outcomes.values() if o.is_ransomware]
        benign = [o for o in outcomes.values() if not o.is_ransomware]
        caught = [o for o in ransomware if o.quarantined_at_step is not None]
        falsely_quarantined = [o for o in benign if o.quarantined_at_step is not None]
        return {
            "ransomware_processes": len(ransomware),
            "caught": len(caught),
            "benign_processes": len(benign),
            "falsely_quarantined": len(falsely_quarantined),
            "writes_blocked": sum(o.writes_blocked for o in outcomes.values()),
            "benign_writes_admitted": sum(o.writes_admitted for o in benign),
        }
