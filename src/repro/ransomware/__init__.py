"""Ransomware detection use case: vocabulary, families, sandbox, dataset,
detector, in-CSD mitigation, and CTI-driven model updates."""

from repro.ransomware.api_vocabulary import (
    API_CATEGORIES,
    API_NAMES,
    API_TO_CATEGORY,
    API_TO_ID,
    VOCABULARY_SIZE,
    decode,
    encode,
)
from repro.ransomware.benign import ALL_BENIGN_PROFILES, BenignProfile, MANUAL_INTERACTION
from repro.ransomware.cuckoo_report import (
    ReportParseError,
    load_report,
    report_from_json,
    report_to_trace,
    save_report,
    trace_to_report,
)
from repro.ransomware.cti import (
    CtiFeed,
    ModelUpdateWorkflow,
    NOVEL_STRAIN,
    ThreatReport,
    UpdateResult,
)
from repro.ransomware.dataset import (
    Dataset,
    PAPER_BENIGN_SEQUENCES,
    PAPER_RANSOMWARE_SEQUENCES,
    PAPER_SEQUENCE_LENGTH,
    PAPER_TOTAL_SEQUENCES,
    build_dataset,
    extract_windows,
    load_csv,
    save_csv,
)
from repro.ransomware.detector import (
    DetectionReport,
    RansomwareDetector,
    Verdict,
    train_detector,
)
from repro.ransomware.families import (
    ALL_FAMILIES,
    FamilyProfile,
    Motif,
    Phase,
    TOTAL_VARIANTS,
    table_ii,
)
# The mitigation surface moved to repro.response (see docs/response.md);
# import from the new home so the deprecation shim stays silent here.
from repro.response.legacy import (
    MitigationEngine,
    ProtectedStorage,
    QuarantineEvent,
    WriteBlocked,
)
from repro.ransomware.analysis import (
    category_distribution,
    category_divergence,
    per_family_detection,
    source_summary,
)
from repro.ransomware.monitor import ProcessMonitor
from repro.ransomware.replay import (
    HostReplay,
    PerProcessDetectorBank,
    ProcessOutcome,
    ScenarioReplay,
    ScenarioStream,
    StreamOutcome,
    build_scenario,
    data_loss_accounting,
)
from repro.ransomware.sandbox import ApiTrace, CuckooSandbox, OS_VERSIONS

__all__ = [
    "ALL_BENIGN_PROFILES",
    "ALL_FAMILIES",
    "API_CATEGORIES",
    "API_NAMES",
    "API_TO_CATEGORY",
    "API_TO_ID",
    "ApiTrace",
    "BenignProfile",
    "CtiFeed",
    "CuckooSandbox",
    "HostReplay",
    "PerProcessDetectorBank",
    "ProcessOutcome",
    "Dataset",
    "DetectionReport",
    "FamilyProfile",
    "MANUAL_INTERACTION",
    "MitigationEngine",
    "ModelUpdateWorkflow",
    "Motif",
    "NOVEL_STRAIN",
    "OS_VERSIONS",
    "PAPER_BENIGN_SEQUENCES",
    "PAPER_RANSOMWARE_SEQUENCES",
    "PAPER_SEQUENCE_LENGTH",
    "PAPER_TOTAL_SEQUENCES",
    "Phase",
    "ProcessMonitor",
    "ProtectedStorage",
    "QuarantineEvent",
    "RansomwareDetector",
    "ReportParseError",
    "ScenarioReplay",
    "ScenarioStream",
    "StreamOutcome",
    "ThreatReport",
    "TOTAL_VARIANTS",
    "UpdateResult",
    "Verdict",
    "VOCABULARY_SIZE",
    "WriteBlocked",
    "build_dataset",
    "build_scenario",
    "category_distribution",
    "data_loss_accounting",
    "category_divergence",
    "per_family_detection",
    "source_summary",
    "decode",
    "encode",
    "extract_windows",
    "load_csv",
    "load_report",
    "report_from_json",
    "report_to_trace",
    "save_report",
    "trace_to_report",
    "save_csv",
    "table_ii",
    "train_detector",
]
