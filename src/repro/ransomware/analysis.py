"""Dataset and trace analysis utilities.

Everything the paper's Appendix A implies the authors inspected while
building the corpus: per-source window counts, per-class API category
distributions, class separability diagnostics, and per-family detection
breakdowns for a deployed detector.
"""

from __future__ import annotations

import collections
import dataclasses

import numpy as np

from repro.ransomware.api_vocabulary import API_CATEGORIES, API_NAMES, API_TO_CATEGORY
from repro.ransomware.dataset import Dataset


def source_summary(dataset: Dataset) -> dict:
    """Window count and label per source (family/application)."""
    counts: dict = {}
    for source, label in zip(dataset.sources, dataset.labels):
        entry = counts.setdefault(source, {"windows": 0, "label": int(label)})
        entry["windows"] += 1
    return counts


def category_distribution(dataset: Dataset, label: int) -> dict:
    """Fraction of tokens per API category for one class."""
    if label not in (0, 1):
        raise ValueError(f"label must be 0 or 1, got {label}")
    mask = dataset.labels == label
    if not np.any(mask):
        raise ValueError(f"dataset has no sequences with label {label}")
    tokens = dataset.sequences[mask].reshape(-1)
    token_counts = np.bincount(tokens, minlength=len(API_NAMES))
    totals: collections.Counter = collections.Counter()
    for token, count in enumerate(token_counts):
        if count:
            totals[API_TO_CATEGORY[API_NAMES[token]]] += int(count)
    total = sum(totals.values())
    return {category: totals.get(category, 0) / total for category in API_CATEGORIES}


def category_divergence(dataset: Dataset) -> float:
    """Total variation distance between class category distributions.

    A coarse separability diagnostic: 0 means the classes use API
    categories identically (sequence *order* would be the only signal);
    1 means disjoint usage.  The synthetic corpus sits in between, which
    is what makes the LSTM's temporal modelling worthwhile.
    """
    benign = category_distribution(dataset, 0)
    ransomware = category_distribution(dataset, 1)
    return 0.5 * sum(
        abs(ransomware[category] - benign[category]) for category in API_CATEGORIES
    )


@dataclasses.dataclass(frozen=True)
class FamilyDetection:
    """Detection outcome for one source."""

    source: str
    windows: int
    detected: int

    @property
    def rate(self) -> float:
        return self.detected / self.windows if self.windows else 0.0


def per_family_detection(detector, dataset: Dataset) -> list:
    """Detection rate per ransomware family through a deployed detector.

    Parameters
    ----------
    detector:
        A :class:`~repro.ransomware.detector.RansomwareDetector` whose
        engine matches the dataset's window length.
    dataset:
        Any split containing ransomware windows with real source names.
    """
    results: list = []
    for source in sorted(set(dataset.sources)):
        indices = [i for i, s in enumerate(dataset.sources) if s == source]
        subset = dataset.subset(np.array(indices))
        if subset.labels.max(initial=0) == 0:
            continue  # benign source
        predictions = detector.engine.predict(
            subset.sequences, threshold=detector.threshold
        )
        results.append(
            FamilyDetection(
                source=source,
                windows=len(subset),
                detected=int(predictions.sum()),
            )
        )
    return results


def window_overlap_fraction(dataset: Dataset, sample: int = 2000, seed: int = 0) -> float:
    """Fraction of sampled window pairs from the same source that share
    more than half their content — a duplication diagnostic for the
    sliding-window protocol (windows at stride 12 of a 100-long window
    overlap by 88%; across sources overlap should be ~0)."""
    rng = np.random.default_rng(seed)
    count = min(sample, len(dataset))
    indices = rng.choice(len(dataset), size=count, replace=False)
    overlapping = 0
    pairs = 0
    for left, right in zip(indices[::2], indices[1::2]):
        pairs += 1
        same = np.mean(dataset.sequences[left] == dataset.sequences[right])
        if same > 0.5:
            overlapping += 1
    return overlapping / pairs if pairs else 0.0
