"""Cuckoo-like sandbox trace synthesiser.

The paper executed each ransomware variant (and each benign workload) in a
Cuckoo Sandbox on Windows 10 and 11 and recorded "all API calls that were
made, in the order in which they would be observed on a system housing a
CSD" (Appendix A).  We cannot run malware, so :class:`CuckooSandbox`
*synthesises* those traces: it walks a profile's behaviour phases, emitting
weighted filler calls and characteristic motifs, with per-variant jitter so
the 78 variants differ the way real variants of a family do (reordered
phases lengths, shifted motif rates, perturbed category mixes).

A small rate of cross-category noise models the scheduler interleaving
other activity into the observed call stream.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from repro.ransomware.api_vocabulary import API_NAMES, CATEGORY_TOKEN_IDS
from repro.ransomware.benign import BenignProfile
from repro.ransomware.families import FamilyProfile, Phase

#: Supported guest environments (Appendix A uses both).
OS_VERSIONS = ("windows10", "windows11")

#: Probability of an unrelated interleaved call at any position.
BACKGROUND_NOISE_RATE = 0.03

#: Process-startup calls every trace begins with (loader activity).
_STARTUP_CALLS = {
    "windows10": (
        "LdrLoadDll", "LdrGetProcedureAddress", "GetModuleHandleW",
        "GetProcAddress", "NtAllocateVirtualMemory", "GetSystemTimeAsFileTime",
        "GetCurrentProcessId", "QueryPerformanceCounter",
    ),
    "windows11": (
        "LdrLoadDll", "LdrGetProcedureAddress", "LdrLoadDll", "GetModuleHandleW",
        "GetProcAddress", "NtAllocateVirtualMemory", "NtQuerySystemInformation",
        "GetSystemTimeAsFileTime", "GetTickCount64", "QueryPerformanceCounter",
    ),
}


@dataclasses.dataclass(frozen=True)
class ApiTrace:
    """One sandbox execution's ordered API-call record."""

    calls: tuple
    source: str          # family or application name
    variant: int         # variant / run index
    os_version: str
    is_ransomware: bool

    def __len__(self) -> int:
        return len(self.calls)


@dataclasses.dataclass(frozen=True)
class _VariantJitter:
    """Per-variant perturbation of a profile's nominal behaviour."""

    length_scale: float
    motif_shift: float
    weight_noise: dict   # category -> multiplicative factor


class CuckooSandbox:
    """Synthesises API-call traces from behaviour profiles.

    Parameters
    ----------
    os_version:
        Guest environment, ``"windows10"`` or ``"windows11"``.
    seed:
        Base seed; every (profile, variant) pair derives its own
        deterministic stream, so the full dataset is reproducible.
    """

    def __init__(self, os_version: str = "windows10", seed: int = 0):
        if os_version not in OS_VERSIONS:
            raise ValueError(
                f"unknown os_version {os_version!r}; expected one of {OS_VERSIONS}"
            )
        self.os_version = os_version
        self.seed = seed

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def execute_ransomware(self, family: FamilyProfile, variant_index: int) -> ApiTrace:
        """Run one ransomware variant; returns its full trace."""
        if not 0 <= variant_index < family.variant_count:
            raise ValueError(
                f"{family.name} has {family.variant_count} variants, "
                f"requested index {variant_index}"
            )
        rng = self._rng_for(family.name, variant_index)
        jitter = self._variant_jitter(rng, family.phases)
        calls = list(_STARTUP_CALLS[self.os_version])
        if family.masquerade_length:
            # Benign-identical prelude: the dropper behaves as its host
            # application until the payload fires (Appendix A's
            # near-indistinguishable early sub-sequences).
            from repro.ransomware.benign import startup_phase

            prelude = startup_phase(family.masquerade_length)
            calls.extend(self._emit_phase(rng, prelude, jitter))
        for phase in family.phases:
            calls.extend(self._emit_phase(rng, phase, jitter))
        return ApiTrace(
            calls=tuple(calls),
            source=family.name,
            variant=variant_index,
            os_version=self.os_version,
            is_ransomware=True,
        )

    def execute_benign(
        self, profile: BenignProfile, run_index: int, target_length: int = 3000
    ) -> ApiTrace:
        """Run one benign workload session of roughly ``target_length`` calls."""
        if target_length < 1:
            raise ValueError(f"target_length must be positive, got {target_length}")
        rng = self._rng_for(profile.name, run_index)
        all_phases = (profile.startup,) + profile.work_phases
        jitter = self._variant_jitter(rng, all_phases)
        calls = list(_STARTUP_CALLS[self.os_version])
        calls.extend(self._emit_phase(rng, profile.startup, jitter))
        phase_index = 0
        while len(calls) < target_length:
            phase = profile.work_phases[phase_index % len(profile.work_phases)]
            calls.extend(self._emit_phase(rng, phase, jitter))
            phase_index += 1
        return ApiTrace(
            calls=tuple(calls),
            source=profile.name,
            variant=run_index,
            os_version=self.os_version,
            is_ransomware=False,
        )

    # ------------------------------------------------------------------
    # Emission machinery
    # ------------------------------------------------------------------

    def _rng_for(self, source: str, variant_index: int) -> np.random.Generator:
        # hashlib, not hash(): Python string hashing is salted per process
        # and would make traces irreproducible across runs.
        material = f"{self.seed}/{self.os_version}/{source}/{variant_index}"
        digest = hashlib.sha256(material.encode()).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "little"))

    @staticmethod
    def _variant_jitter(rng: np.random.Generator, phases) -> _VariantJitter:
        categories = set()
        for phase in phases:
            categories.update(phase.category_weights)
        return _VariantJitter(
            length_scale=float(rng.uniform(0.75, 1.3)),
            motif_shift=float(rng.uniform(-0.08, 0.08)),
            # Sorted: set iteration order depends on the per-process hash
            # seed, and the rng draws must not.
            weight_noise={
                category: float(np.exp(rng.normal(0.0, 0.2)))
                for category in sorted(categories)
            },
        )

    def _emit_phase(self, rng: np.random.Generator, phase: Phase, jitter: _VariantJitter) -> list:
        length = max(5, int(round(phase.length * jitter.length_scale)))
        motif_probability = float(
            np.clip(phase.motif_probability + jitter.motif_shift, 0.0, 0.9)
        )
        categories = list(phase.category_weights)
        weights = np.array(
            [
                phase.category_weights[category] * jitter.weight_noise.get(category, 1.0)
                for category in categories
            ]
        )
        weights = weights / weights.sum()

        calls: list = []
        while len(calls) < length:
            if rng.random() < BACKGROUND_NOISE_RATE:
                calls.append(API_NAMES[rng.integers(0, len(API_NAMES))])
                continue
            if phase.motifs and rng.random() < motif_probability:
                motif = phase.motifs[rng.integers(0, len(phase.motifs))]
                calls.extend(motif.calls)
            else:
                category = categories[rng.choice(len(categories), p=weights)]
                token_ids = CATEGORY_TOKEN_IDS[category]
                calls.append(API_NAMES[token_ids[rng.integers(0, len(token_ids))]])
        return calls
