"""Benign workload profiles (paper Appendix A).

The benign half of the dataset comes from "manual interaction with such
environments and via executing popular applications", 30 of them, drawn
from The Portable Freeware Collection's Top Ten lists (2018-2021) and
Popular Titles.  Each application profile is a looping *session*: a
startup phase followed by repeated work phases until the requested trace
length is reached.

Several profiles intentionally overlap with ransomware behaviours —
archivers and password managers use the CryptoAPI, backup tools walk
directories and rewrite many files — because those hard negatives are
what makes 0.98-accuracy nontrivial rather than a vocabulary-lookup
exercise.
"""

from __future__ import annotations

import dataclasses

from repro.ransomware.families import (
    DIRECTORY_WALK,
    HTTP_C2,
    Motif,
    Phase,
    encryption_phase,
)

# Benign motifs -------------------------------------------------------

UI_MESSAGE_PUMP = Motif(
    "ui_message_pump",
    ("GetMessageW", "TranslateMessage", "DispatchMessageW", "PeekMessageW", "DefWindowProcW"),
)

OPEN_DOCUMENT = Motif(
    "open_document",
    ("CreateFileW", "GetFileSizeEx", "ReadFile", "ReadFile", "CloseHandle"),
)

SAVE_DOCUMENT = Motif(
    "save_document",
    ("CreateFileW", "WriteFile", "FlushFileBuffers", "SetEndOfFile", "CloseHandle"),
)

SETTINGS_READ = Motif(
    "settings_read",
    ("RegOpenKeyExW", "RegQueryValueExW", "RegQueryValueExW", "RegCloseKey"),
)

UPDATE_CHECK = Motif(
    "update_check",
    ("InternetOpenW", "InternetOpenUrlW", "InternetReadFile", "InternetCloseHandle"),
)

ARCHIVE_COMPRESS = Motif(
    "archive_compress",
    (
        "FindNextFileW", "CreateFileW", "ReadFile", "CryptHashData",
        "WriteFile", "CloseHandle",
    ),
)

ARCHIVE_ENCRYPT = Motif(
    # An AES-protected 7z/zip job: a legitimate crypto+file workload.
    "archive_encrypt",
    (
        "FindNextFileW", "CreateFileW", "ReadFile", "CryptEncrypt",
        "WriteFile", "CloseHandle",
    ),
)

VAULT_UNLOCK = Motif(
    "vault_unlock",
    (
        "CryptAcquireContextW", "CryptCreateHash", "CryptHashData",
        "CryptDeriveKey", "CryptDecrypt",
    ),
)

MEDIA_STREAM = Motif(
    "media_stream",
    ("ReadFile", "ReadFile", "VirtualAlloc", "BitBlt", "Sleep"),
)

SYNC_UPLOAD = Motif(
    "sync_upload",
    ("CreateFileW", "ReadFile", "send", "recv", "CloseHandle"),
)

BACKUP_COPY = Motif(
    "backup_copy",
    ("FindNextFileW", "CreateFileW", "ReadFile", "WriteFile", "SetFileAttributesW", "CloseHandle"),
)

ENCRYPTED_BACKUP = Motif(
    # An encrypt-then-atomically-replace backup pass: a legitimate
    # workload that is call-for-call almost the ransomware encryption
    # loop (the paper's hardest benign negatives — and the detector's
    # main source of false positives).
    "encrypted_backup",
    (
        "FindNextFileW", "CreateFileW", "ReadFile", "CryptEncrypt",
        "WriteFile", "SetEndOfFile", "MoveFileExW", "CloseHandle",
    ),
)


@dataclasses.dataclass(frozen=True)
class BenignProfile:
    """One benign workload: startup, then work phases looped to length."""

    name: str
    startup: Phase
    work_phases: tuple
    description: str = ""

    def __post_init__(self) -> None:
        if not self.work_phases:
            raise ValueError(f"{self.name}: needs at least one work phase")


def _startup(length: int = 140) -> Phase:
    return Phase(
        name="startup",
        length=length,
        category_weights={
            "system_info": 4.0, "registry": 3.0, "file": 2.0,
            "memory": 2.0, "ui": 1.5,
        },
        motifs=(SETTINGS_READ,),
        motif_probability=0.25,
    )


def startup_phase(length: int = 140) -> Phase:
    """Public alias: the sandbox uses this exact phase as the benign-
    identical masquerade prelude of ransomware traces."""
    return _startup(length)


def _ui_session(length: int = 300) -> Phase:
    return Phase(
        name="ui_session",
        length=length,
        category_weights={"ui": 6.0, "synchronization": 1.5, "system_info": 0.5},
        motifs=(UI_MESSAGE_PUMP,),
        motif_probability=0.55,
    )


def _document_work(length: int = 250) -> Phase:
    return Phase(
        name="document_work",
        length=length,
        category_weights={"file": 4.0, "ui": 3.0, "memory": 1.0},
        motifs=(OPEN_DOCUMENT, SAVE_DOCUMENT, UI_MESSAGE_PUMP),
        motif_probability=0.45,
    )


def _editor(name: str, description: str) -> BenignProfile:
    return BenignProfile(
        name=name,
        startup=_startup(),
        work_phases=(_ui_session(), _document_work()),
        description=description,
    )


def _archiver(name: str, encrypted_jobs: bool) -> BenignProfile:
    job_motifs = (ARCHIVE_COMPRESS, ARCHIVE_ENCRYPT, DIRECTORY_WALK) if encrypted_jobs else (
        ARCHIVE_COMPRESS, DIRECTORY_WALK,
    )
    work: tuple = (
        Phase(
            name="archive_job",
            length=420,
            category_weights={"file": 6.0, "crypto": 1.2, "memory": 1.0},
            motifs=job_motifs,
            motif_probability=0.6,
        ),
        _ui_session(160),
    )
    if encrypted_jobs:
        # An AES-protected archive pass over a directory tree is generated
        # by the same phase as ransomware encryption (see families.py).
        work = work + (encryption_phase(130),)
    return BenignProfile(
        name=name,
        startup=_startup(100),
        work_phases=work,
        description="Archiver; AES-protected jobs are legitimate crypto+file loops.",
    )


def _media_player(name: str) -> BenignProfile:
    return BenignProfile(
        name=name,
        startup=_startup(),
        work_phases=(
            Phase(
                name="playback",
                length=450,
                category_weights={"file": 3.0, "ui": 3.0, "memory": 2.0, "synchronization": 1.5},
                motifs=(MEDIA_STREAM, UI_MESSAGE_PUMP),
                motif_probability=0.5,
            ),
        ),
        description="Streaming reads plus a render/UI loop.",
    )


def _browserish(name: str) -> BenignProfile:
    return BenignProfile(
        name=name,
        startup=_startup(170),
        work_phases=(
            Phase(
                name="browsing",
                length=400,
                category_weights={"network": 4.5, "ui": 3.0, "file": 1.5, "memory": 1.5},
                motifs=(HTTP_C2, UPDATE_CHECK, UI_MESSAGE_PUMP),
                motif_probability=0.45,
            ),
        ),
        description="Network-heavy interactive client.",
    )


def _sync_tool(name: str) -> BenignProfile:
    return BenignProfile(
        name=name,
        startup=_startup(110),
        work_phases=(
            Phase(
                name="sync",
                length=380,
                category_weights={"file": 4.0, "network": 4.0, "synchronization": 1.0},
                motifs=(SYNC_UPLOAD, DIRECTORY_WALK),
                motif_probability=0.55,
            ),
        ),
        description="Walks directories and moves them over the network.",
    )


def _backup_tool(name: str) -> BenignProfile:
    return BenignProfile(
        name=name,
        startup=_startup(120),
        work_phases=(
            Phase(
                name="backup_pass",
                length=430,
                category_weights={"file": 6.5, "system_info": 0.8, "crypto": 0.8},
                motifs=(BACKUP_COPY, ENCRYPTED_BACKUP, DIRECTORY_WALK),
                motif_probability=0.6,
            ),
            # Encrypting backup pass: same generator as ransomware
            # encryption — indistinguishable by construction.
            encryption_phase(170),
        ),
        description="Bulk directory walk + rewrite: the hardest benign case.",
    )


def _password_manager(name: str) -> BenignProfile:
    return BenignProfile(
        name=name,
        startup=_startup(130),
        work_phases=(
            Phase(
                name="vault_session",
                length=300,
                category_weights={"crypto": 3.0, "ui": 3.0, "file": 1.5, "registry": 1.0},
                motifs=(VAULT_UNLOCK, UI_MESSAGE_PUMP),
                motif_probability=0.45,
            ),
        ),
        description="Legitimate CryptoAPI user (KDF + decrypt, no mass file IO).",
    )


def _utility(name: str, description: str = "") -> BenignProfile:
    return BenignProfile(
        name=name,
        startup=_startup(100),
        work_phases=(
            Phase(
                name="utility_work",
                length=320,
                category_weights={
                    "file": 2.5, "registry": 2.0, "ui": 2.5,
                    "system_info": 2.0, "process": 1.0,
                },
                motifs=(SETTINGS_READ, OPEN_DOCUMENT, UI_MESSAGE_PUMP),
                motif_probability=0.35,
            ),
        ),
        description=description or "General desktop utility.",
    )


#: The 30 portable applications (Portable Freeware Top Tens, 2018-2021).
PORTABLE_APPLICATIONS = (
    _editor("Notepad++", "Tabbed text editor."),
    _editor("AkelPad", "Lightweight editor."),
    _editor("CudaText", "Code editor."),
    _archiver("7-Zip Portable", encrypted_jobs=True),
    _archiver("PeaZip Portable", encrypted_jobs=True),
    _archiver("Bandizip Portable", encrypted_jobs=False),
    _media_player("VLC Portable"),
    _media_player("MPC-HC Portable"),
    _media_player("foobar2000 Portable"),
    _browserish("Firefox Portable"),
    _browserish("Iron Portable"),
    _browserish("qBittorrent Portable"),
    _sync_tool("FreeFileSync Portable"),
    _sync_tool("Syncthing Portable"),
    _backup_tool("Cobian Backup Portable"),
    _backup_tool("AOMEI Backupper Portable"),
    _password_manager("KeePass Portable"),
    _password_manager("PasswordSafe Portable"),
    _utility("Everything Search", "Filesystem indexer."),
    _utility("WizTree Portable", "Disk usage analyser."),
    _utility("CPU-Z Portable", "Hardware prober."),
    _utility("HWiNFO Portable", "Hardware monitor."),
    _utility("Rufus Portable", "USB imaging tool."),
    _utility("Ditto Portable", "Clipboard manager."),
    _utility("ShareX Portable", "Screenshot tool."),
    _utility("SumatraPDF Portable", "PDF reader."),
    _utility("IrfanView Portable", "Image viewer."),
    _utility("Audacity Portable", "Audio editor."),
    _utility("Greenshot Portable", "Screen capture."),
    _utility("Process Explorer", "Task-manager replacement."),
)

#: Manual desktop interaction (Appendix A's second benign source).
MANUAL_INTERACTION = BenignProfile(
    name="ManualInteraction",
    startup=_startup(160),
    work_phases=(
        _ui_session(350),
        _document_work(280),
        Phase(
            name="desktop_misc",
            length=260,
            category_weights={
                "ui": 3.0, "file": 2.0, "registry": 1.5, "process": 1.5,
                "network": 1.0, "system_info": 1.0,
            },
            motifs=(UI_MESSAGE_PUMP, OPEN_DOCUMENT, UPDATE_CHECK),
            motif_probability=0.35,
        ),
    ),
    description="A user clicking around Windows between application runs.",
)

#: Everything the benign trace generator samples from.
ALL_BENIGN_PROFILES = PORTABLE_APPLICATIONS + (MANUAL_INTERACTION,)
