"""Ransomware family behaviour profiles (paper Table II / Appendix A).

Ten families; all encrypt files, four also self-propagate.  (The paper's
prose says "78 variants" but its own Table II rows sum to 76 — we
reproduce the table's per-family counts.)  Each family is described as an ordered list of behaviour
*phases*; each phase mixes weighted draws over API categories with
family-characteristic *motifs* — short fixed call sub-sequences such as
the read-encrypt-write-rename loop — that give the traces learnable
temporal structure, the thing the paper's LSTM exploits.

The profiles are behavioural simulations assembled from public malware
analyses of the named families; no actual malware logic is present (see
DESIGN.md, "Non-goals").
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Motif:
    """A short, characteristic API-call sub-sequence."""

    name: str
    calls: tuple


@dataclasses.dataclass(frozen=True)
class Phase:
    """One behavioural phase of a trace.

    Parameters
    ----------
    name:
        Phase label (useful when debugging generated traces).
    length:
        Nominal number of calls emitted (jittered per variant).
    category_weights:
        Relative draw weights over API categories for filler calls.
    motifs:
        Motifs characteristic of this phase.
    motif_probability:
        Chance that the next emission is a whole motif instead of a
        single filler call.
    """

    name: str
    length: int
    category_weights: dict
    motifs: tuple = ()
    motif_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"phase {self.name}: length must be positive")
        if not self.category_weights:
            raise ValueError(f"phase {self.name}: needs category weights")
        if not 0.0 <= self.motif_probability <= 1.0:
            raise ValueError(f"phase {self.name}: bad motif probability")
        if self.motif_probability > 0.0 and not self.motifs:
            raise ValueError(f"phase {self.name}: motif probability without motifs")


@dataclasses.dataclass(frozen=True)
class FamilyProfile:
    """A Table II row plus its behavioural description.

    ``masquerade_length`` is the number of calls of benign-identical
    prelude the sandbox prepends before the family's own phases: droppers
    run inside (or as) a legitimate-looking host process until the payload
    fires, so the earliest trace windows are genuinely "indistinguishable
    from those of benign nature" (Appendix A).  This is the controlled
    source of the detector's residual false negatives.
    """

    name: str
    variant_count: int
    encrypts: bool
    self_propagates: bool
    phases: tuple
    description: str = ""
    masquerade_length: int = 130

    def __post_init__(self) -> None:
        if self.variant_count <= 0:
            raise ValueError(f"{self.name}: variant_count must be positive")
        if not self.phases:
            raise ValueError(f"{self.name}: needs at least one phase")
        if self.masquerade_length < 0:
            raise ValueError(f"{self.name}: masquerade_length must be >= 0")


# ----------------------------------------------------------------------
# Shared motifs
# ----------------------------------------------------------------------

ENCRYPT_LOOP = Motif(
    "encrypt_loop",
    (
        "FindNextFileW", "GetFileAttributesW", "NtCreateFile", "NtReadFile",
        "CryptEncrypt", "NtWriteFile", "SetEndOfFile", "MoveFileWithProgressW",
        "NtClose",
    ),
)

BCRYPT_LOOP = Motif(
    "bcrypt_loop",
    (
        "FindNextFileW", "NtCreateFile", "NtReadFile", "BCryptEncrypt",
        "NtWriteFile", "FlushFileBuffers", "MoveFileExW", "NtClose",
    ),
)

WIPE_ORIGINAL = Motif(
    "wipe_original",
    ("NtCreateFile", "NtWriteFile", "SetEndOfFile", "NtClose", "DeleteFileW"),
)

KEY_SETUP = Motif(
    "key_setup",
    (
        "CryptAcquireContextW", "CryptGenRandom", "CryptGenKey",
        "CryptExportKey", "CryptDestroyKey",
    ),
)

BCRYPT_KEY_SETUP = Motif(
    "bcrypt_key_setup",
    (
        "BCryptOpenAlgorithmProvider", "BCryptGenRandom",
        "BCryptGenerateSymmetricKey",
    ),
)

C2_BEACON = Motif(
    "c2_beacon",
    (
        "WSAStartup", "GetAddrInfoW", "socket", "connect", "send", "recv",
        "closesocket",
    ),
)

HTTP_C2 = Motif(
    "http_c2",
    (
        "InternetOpenW", "InternetConnectW", "HttpOpenRequestW",
        "HttpSendRequestW", "InternetReadFile", "InternetCloseHandle",
    ),
)

SHADOW_DELETE = Motif(
    "shadow_delete",
    (
        "CreateProcessW", "NtQueryInformationProcess", "WaitForSingleObject",
        "GetExitCodeProcess", "CloseHandle",
    ),
)

PERSISTENCE_RUN_KEY = Motif(
    "persistence_run_key",
    ("RegOpenKeyExW", "RegSetValueExW", "RegCloseKey"),
)

RANSOM_NOTE = Motif(
    "ransom_note",
    ("NtCreateFile", "NtWriteFile", "NtClose", "SetClipboardData", "MessageBoxW"),
)

ENUMERATE_DRIVES = Motif(
    "enumerate_drives",
    ("GetLogicalDrives", "GetDriveTypeW", "GetVolumeInformationW", "GetDiskFreeSpaceExW"),
)

DIRECTORY_WALK = Motif(
    "directory_walk",
    ("FindFirstFileExW", "FindNextFileW", "FindNextFileW", "NtQueryDirectoryFile", "FindClose"),
)

SMB_SCAN = Motif(
    "smb_scan",
    ("socket", "htons", "inet_addr", "connect", "send", "recv", "closesocket"),
)

PROCESS_INJECTION = Motif(
    "process_injection",
    (
        "OpenProcess", "VirtualAllocEx", "WriteProcessMemory",
        "CreateRemoteThread", "CloseHandle",
    ),
)

SERVICE_KILL = Motif(
    "service_kill",
    (
        "OpenSCManagerW", "OpenServiceW", "ControlService",
        "QueryServiceStatusEx", "CloseServiceHandle",
    ),
)

EXFILTRATE = Motif(
    "exfiltrate",
    ("NtCreateFile", "NtReadFile", "send", "send", "NtClose"),
)

SELF_INFECT = Motif(
    "self_infect",
    (
        "NtCreateFile", "NtReadFile", "NtWriteFile", "SetFileAttributesW",
        "NtSetInformationFile", "NtClose",
    ),
)

LOCK_SCREEN = Motif(
    "lock_screen",
    (
        "CreateWindowExW", "ShowWindow", "SetForegroundWindow",
        "GetForegroundWindow", "SendMessageW",
    ),
)

KILL_SWITCH_CHECK = Motif(
    "kill_switch_check",
    ("InternetOpenW", "InternetOpenUrlW", "InternetCloseHandle"),
)

MUTEX_GUARD = Motif(
    "mutex_guard",
    ("CreateMutexW", "WaitForSingleObject",),
)


# ----------------------------------------------------------------------
# Shared phase builders
# ----------------------------------------------------------------------

SETTINGS_PROBE = Motif(
    # Registry settings reads: indistinguishable from an application
    # loading its configuration.
    "settings_probe",
    ("RegOpenKeyExW", "RegQueryValueExW", "RegQueryValueExW", "RegCloseKey"),
)


def _recon_phase(length: int = 120) -> Phase:
    """System fingerprinting before the payload fires."""
    return Phase(
        name="recon",
        length=length,
        category_weights={
            "system_info": 5.0, "registry": 3.0, "process": 2.0,
            "file": 1.0, "memory": 1.0,
        },
        motifs=(MUTEX_GUARD, SETTINGS_PROBE),
        motif_probability=0.1,
    )


def _persistence_phase(length: int = 80) -> Phase:
    return Phase(
        name="persistence",
        length=length,
        category_weights={"registry": 5.0, "file": 2.0, "service": 2.0, "process": 1.0},
        motifs=(PERSISTENCE_RUN_KEY,),
        motif_probability=0.30,
    )


def _key_setup_phase(length: int = 60, bcrypt: bool = False) -> Phase:
    return Phase(
        name="key_setup",
        length=length,
        category_weights={"crypto": 5.0, "network": 2.0, "memory": 1.0},
        motifs=(BCRYPT_KEY_SETUP if bcrypt else KEY_SETUP, C2_BEACON),
        motif_probability=0.35,
    )


def _enumeration_phase(length: int = 200) -> Phase:
    return Phase(
        name="enumeration",
        length=length,
        category_weights={"file": 6.0, "system_info": 1.0},
        motifs=(ENUMERATE_DRIVES, DIRECTORY_WALK),
        motif_probability=0.45,
    )


def _encryption_phase(length: int = 1400, bcrypt: bool = False) -> Phase:
    return Phase(
        name="encryption",
        length=length,
        category_weights={"file": 5.0, "crypto": 3.0, "memory": 0.5},
        motifs=(BCRYPT_LOOP if bcrypt else ENCRYPT_LOOP, WIPE_ORIGINAL, DIRECTORY_WALK),
        motif_probability=0.70,
    )


def _shadow_phase(length: int = 40) -> Phase:
    return Phase(
        name="shadow_deletion",
        length=length,
        category_weights={"process": 4.0, "service": 3.0},
        motifs=(SHADOW_DELETE, SERVICE_KILL),
        motif_probability=0.50,
    )


def _note_phase(length: int = 80) -> Phase:
    return Phase(
        name="ransom_note",
        length=length,
        category_weights={"file": 3.0, "ui": 4.0, "registry": 1.0},
        motifs=(RANSOM_NOTE,),
        motif_probability=0.35,
    )


def _propagation_phase(length: int = 300) -> Phase:
    return Phase(
        name="propagation",
        length=length,
        category_weights={"network": 6.0, "process": 2.0, "memory": 1.0},
        motifs=(SMB_SCAN, PROCESS_INJECTION),
        motif_probability=0.55,
    )


# ----------------------------------------------------------------------
# The ten families of Table II
# ----------------------------------------------------------------------

RYUK = FamilyProfile(
    name="Ryuk",
    variant_count=5,
    encrypts=True,
    self_propagates=True,
    phases=(
        _recon_phase(),
        Phase(
            name="injection",
            length=100,
            category_weights={"process": 4.0, "memory": 4.0},
            motifs=(PROCESS_INJECTION,),
            motif_probability=0.5,
        ),
        Phase(
            name="service_stop",
            length=90,
            category_weights={"service": 5.0, "process": 2.0},
            motifs=(SERVICE_KILL,),
            motif_probability=0.55,
        ),
        _key_setup_phase(),
        _enumeration_phase(),
        _encryption_phase(),
        _shadow_phase(60),
        _note_phase(),
        _propagation_phase(260),
    ),
    description="Targeted; injects into processes, stops AV/backup services.",
)

LOCKBIT = FamilyProfile(
    name="Lockbit",
    variant_count=6,
    encrypts=True,
    self_propagates=True,
    phases=(
        _recon_phase(80),
        _persistence_phase(60),
        _key_setup_phase(50),
        Phase(
            name="threaded_enumeration",
            length=180,
            category_weights={"file": 5.0, "process": 2.0, "synchronization": 2.0},
            motifs=(DIRECTORY_WALK, ENUMERATE_DRIVES),
            motif_probability=0.5,
        ),
        _encryption_phase(1500),
        _shadow_phase(),
        _note_phase(60),
        _propagation_phase(280),
    ),
    description="Speed-focused; multi-threaded encryption, lateral movement.",
)

TESLACRYPT = FamilyProfile(
    name="Teslacrypt",
    variant_count=10,
    encrypts=True,
    self_propagates=False,
    phases=(
        _recon_phase(),
        _persistence_phase(120),
        _key_setup_phase(70),
        Phase(
            name="targeted_enumeration",
            length=260,
            category_weights={"file": 6.0, "registry": 1.5},
            motifs=(DIRECTORY_WALK,),
            motif_probability=0.5,
        ),
        _encryption_phase(1300),
        _note_phase(100),
    ),
    description="Targets user/game files; heavy registry persistence.",
)

VIRLOCK = FamilyProfile(
    name="Virlock",
    variant_count=11,
    encrypts=True,
    self_propagates=False,
    phases=(
        _recon_phase(90),
        _persistence_phase(100),
        _key_setup_phase(40),
        _enumeration_phase(180),
        Phase(
            name="infect_and_encrypt",
            length=1200,
            category_weights={"file": 5.0, "crypto": 2.0, "memory": 2.0},
            motifs=(SELF_INFECT, ENCRYPT_LOOP),
            motif_probability=0.65,
        ),
        Phase(
            name="screen_lock",
            length=220,
            category_weights={"ui": 6.0, "process": 1.0},
            motifs=(LOCK_SCREEN,),
            motif_probability=0.5,
        ),
        _note_phase(70),
    ),
    description="Polymorphic file infector plus screen locker.",
)

CRYPTOWALL = FamilyProfile(
    name="Cryptowall",
    variant_count=8,
    encrypts=True,
    self_propagates=False,
    phases=(
        _recon_phase(),
        Phase(
            name="c2_negotiation",
            length=180,
            category_weights={"network": 6.0, "crypto": 2.0},
            motifs=(HTTP_C2, C2_BEACON),
            motif_probability=0.55,
        ),
        _persistence_phase(),
        _key_setup_phase(70),
        _enumeration_phase(),
        _encryption_phase(1300),
        _shadow_phase(),
        _note_phase(),
    ),
    description="Long C2 key negotiation over HTTP before encrypting.",
)

CERBER = FamilyProfile(
    name="Cerber",
    variant_count=9,
    encrypts=True,
    self_propagates=False,
    phases=(
        _recon_phase(110),
        _persistence_phase(),
        _key_setup_phase(60, bcrypt=True),
        _enumeration_phase(220),
        _encryption_phase(1350, bcrypt=True),
        _shadow_phase(),
        Phase(
            name="spoken_note",
            length=130,
            category_weights={"ui": 5.0, "file": 2.0, "system_info": 1.0},
            motifs=(RANSOM_NOTE,),
            motif_probability=0.4,
        ),
    ),
    description="Uses CNG (BCrypt) APIs; text-to-speech ransom note.",
)

WANNACRY = FamilyProfile(
    name="Wannacry",
    variant_count=7,
    encrypts=True,
    self_propagates=True,
    phases=(
        Phase(
            name="kill_switch",
            length=40,
            category_weights={"network": 5.0, "system_info": 1.0},
            motifs=(KILL_SWITCH_CHECK,),
            motif_probability=0.5,
        ),
        _recon_phase(80),
        Phase(
            name="service_install",
            length=90,
            category_weights={"service": 5.0, "file": 2.0},
            motifs=(SERVICE_KILL,),
            motif_probability=0.3,
        ),
        _key_setup_phase(60),
        _enumeration_phase(),
        _encryption_phase(1200),
        _shadow_phase(),
        _note_phase(90),
        Phase(
            name="worm_scan",
            length=420,
            category_weights={"network": 7.0, "memory": 1.5, "process": 1.0},
            motifs=(SMB_SCAN,),
            motif_probability=0.65,
        ),
    ),
    description="EternalBlue worm; kill-switch domain check, SMB scanning.",
)

LOCKY = FamilyProfile(
    name="Locky",
    variant_count=6,
    encrypts=True,
    self_propagates=False,
    phases=(
        _recon_phase(),
        Phase(
            name="payload_download",
            length=150,
            category_weights={"network": 5.0, "file": 2.0, "memory": 1.5},
            motifs=(HTTP_C2,),
            motif_probability=0.5,
        ),
        _persistence_phase(70),
        _key_setup_phase(),
        _enumeration_phase(240),
        _encryption_phase(1250),
        _shadow_phase(),
        _note_phase(),
    ),
    description="Macro dropper downloads the payload, renames to .locky.",
)

CHIMERA = FamilyProfile(
    name="Chimera",
    variant_count=9,
    encrypts=True,
    self_propagates=False,
    phases=(
        _recon_phase(),
        _persistence_phase(),
        _key_setup_phase(70),
        _enumeration_phase(),
        Phase(
            name="exfiltration",
            length=320,
            category_weights={"network": 5.0, "file": 3.0},
            motifs=(EXFILTRATE, C2_BEACON),
            motif_probability=0.6,
        ),
        _encryption_phase(1150),
        _note_phase(110),
    ),
    description="Doxware: exfiltrates files, threatens publication.",
)

BADRABBIT = FamilyProfile(
    name="BadRabbit",
    variant_count=5,
    encrypts=True,
    self_propagates=True,
    phases=(
        _recon_phase(90),
        Phase(
            name="scheduled_tasks",
            length=100,
            category_weights={"service": 4.0, "process": 3.0, "registry": 2.0},
            motifs=(SERVICE_KILL,),
            motif_probability=0.35,
        ),
        _key_setup_phase(60),
        _enumeration_phase(190),
        _encryption_phase(1250),
        _note_phase(80),
        _propagation_phase(340),
    ),
    description="Drive-by dropper; disk-level encryption, SMB spread.",
)

#: Public alias used by the benign profiles: an encrypt-and-replace bulk
#: file job (what an encrypting backup/archive pass does) is generated by
#: the *same* phase as ransomware encryption, making those benign windows
#: genuinely indistinguishable — the controlled source of the detector's
#: residual false positives.
encryption_phase = _encryption_phase

#: All Table II families, in the table's order.
ALL_FAMILIES = (
    RYUK, LOCKBIT, TESLACRYPT, VIRLOCK, CRYPTOWALL,
    CERBER, WANNACRY, LOCKY, CHIMERA, BADRABBIT,
)

#: Total variants: the paper's prose says 78 but its Table II rows sum to 76;
#: we reproduce the table.
TOTAL_VARIANTS = sum(family.variant_count for family in ALL_FAMILIES)


def table_ii() -> list:
    """The rows of Table II: (family, instances, encryption, propagation)."""
    return [
        (family.name, family.variant_count, family.encrypts, family.self_propagates)
        for family in ALL_FAMILIES
    ]
