"""CTI-driven model updates (paper Section III-A).

"In the event that the proposed approach is leveraged for prompt
ransomware detection and mitigation, it is advisable to update the
FPGA-based model with a version that has been retrained on new ransomware
strains once they are uncovered in Cyber Threat Intelligence (CTI) feeds."

Crucially, the FPGA binary's structure "remains fixed regardless of
changes in the number of parameters or embeddings trained in the offline
model", so an update is a *weight reload*, not a recompile.
:class:`ModelUpdateWorkflow` reproduces that loop: ingest a CTI report
describing a new strain, synthesise training data for it, retrain offline,
export the weight file, and hot-swap it into the running engine.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.engine import CSDInferenceEngine
from repro.core.weights import HostWeights
from repro.nn.trainer import Trainer, TrainingConfig
from repro.ransomware.dataset import Dataset, extract_windows
from repro.ransomware.families import (
    DIRECTORY_WALK,
    ENCRYPT_LOOP,
    EXFILTRATE,
    FamilyProfile,
    Phase,
    SERVICE_KILL,
    _enumeration_phase,
    _key_setup_phase,
    _note_phase,
    _recon_phase,
)
from repro.ransomware.sandbox import CuckooSandbox


@dataclasses.dataclass(frozen=True)
class ThreatReport:
    """A CTI feed entry describing a newly observed strain."""

    strain: FamilyProfile
    first_seen: str            # ISO date from the feed
    source_feed: str = "cti"


#: An example novel strain (double-extortion, service-killing) for the
#: model-update example and tests: not in the training families.
NOVEL_STRAIN = FamilyProfile(
    name="Hive-like",
    variant_count=3,
    encrypts=True,
    self_propagates=False,
    phases=(
        _recon_phase(100),
        Phase(
            name="defense_evasion",
            length=110,
            category_weights={"service": 4.0, "process": 3.0, "registry": 1.5},
            motifs=(SERVICE_KILL,),
            motif_probability=0.45,
        ),
        _key_setup_phase(60, bcrypt=True),
        _enumeration_phase(190),
        Phase(
            name="exfiltrate_then_encrypt",
            length=1250,
            category_weights={"file": 4.5, "network": 2.5, "crypto": 2.5},
            motifs=(EXFILTRATE, ENCRYPT_LOOP, DIRECTORY_WALK),
            motif_probability=0.65,
        ),
        _note_phase(90),
    ),
    description="Double extortion: interleaved exfiltration and encryption.",
)


@dataclasses.dataclass(frozen=True)
class UpdateResult:
    """Outcome of one CTI-driven update cycle."""

    strain_name: str
    sequences_added: int
    epochs_trained: int
    detection_rate_before: float
    detection_rate_after: float


class CtiFeed:
    """A queue of threat reports awaiting model updates.

    Models the operational loop: reports arrive from intelligence
    sources, the operator (or an automation) drains them through
    :meth:`ModelUpdateWorkflow.process_feed`, and processed strains are
    remembered so duplicate reports are ignored.
    """

    def __init__(self, reports=()):
        self._pending: list = list(reports)
        self._processed: list = []

    def publish(self, report: ThreatReport) -> None:
        """A new report arrives on the feed."""
        self._pending.append(report)

    @property
    def pending(self) -> tuple:
        return tuple(self._pending)

    @property
    def processed_strains(self) -> tuple:
        return tuple(self._processed)

    def take(self) -> ThreatReport | None:
        """Pop the oldest unprocessed report, skipping known strains."""
        while self._pending:
            report = self._pending.pop(0)
            if report.strain.name not in self._processed:
                return report
        return None

    def mark_processed(self, report: ThreatReport) -> None:
        self._processed.append(report.strain.name)


class ModelUpdateWorkflow:
    """Retrain-and-hot-swap loop for a deployed engine.

    Parameters
    ----------
    engine:
        The deployed (running) CSD engine to update in place.
    model:
        The offline training model whose weights the engine currently
        runs.  Retraining continues from these weights (fine-tuning).
    """

    def __init__(self, engine: CSDInferenceEngine, model):
        self.engine = engine
        self.model = model

    def synthesize_strain_data(
        self, report: ThreatReport, windows_per_variant: int = 60, seed: int = 0
    ) -> Dataset:
        """Sandbox the new strain and window its traces (Appendix A flow)."""
        length = self.engine.config.dimensions.sequence_length
        sequences: list = []
        for variant in range(report.strain.variant_count):
            sandbox = CuckooSandbox(
                os_version="windows10" if variant % 2 == 0 else "windows11",
                seed=seed,
            )
            trace = sandbox.execute_ransomware(report.strain, variant)
            sequences.extend(extract_windows(trace, length, windows_per_variant))
        count = len(sequences)
        return Dataset(
            sequences=np.asarray(sequences, dtype=np.int64),
            labels=np.ones(count, dtype=np.int64),
            sources=tuple(report.strain.name for _ in range(count)),
        )

    def detection_rate(self, dataset: Dataset) -> float:
        """Fraction of the given (all-positive) windows the engine flags."""
        predictions = self.engine.predict(dataset.sequences)
        return float(predictions.mean())

    def apply_update(
        self,
        report: ThreatReport,
        benign_refresh: Dataset,
        epochs: int = 5,
        seed: int = 0,
    ) -> UpdateResult:
        """One full update cycle: synthesise, fine-tune, hot-swap.

        Parameters
        ----------
        report:
            The CTI entry for the new strain.
        benign_refresh:
            Benign (and optionally old-ransomware) sequences mixed into
            fine-tuning so the model does not forget the old classes.
        epochs:
            Fine-tuning epochs (small: this is an update, not a retrain
            from scratch).
        """
        strain_data = self.synthesize_strain_data(report, seed=seed)
        before = self.detection_rate(strain_data)

        combined_sequences = np.concatenate(
            [strain_data.sequences, benign_refresh.sequences]
        )
        combined_labels = np.concatenate([strain_data.labels, benign_refresh.labels])
        trainer = Trainer(
            self.model,
            TrainingConfig(epochs=epochs, eval_every=max(1, epochs), seed=seed),
        )
        trainer.fit(combined_sequences, combined_labels,
                    strain_data.sequences, strain_data.labels)

        # Hot swap: same binary, new parameters (Section III-A).
        self.engine.device.ddr.banks[0].free_all()
        self.engine.load_weights(HostWeights.from_model(self.model))
        after = self.detection_rate(strain_data)
        return UpdateResult(
            strain_name=report.strain.name,
            sequences_added=len(strain_data),
            epochs_trained=epochs,
            detection_rate_before=before,
            detection_rate_after=after,
        )

    def process_feed(
        self,
        feed: CtiFeed,
        benign_refresh: Dataset,
        epochs: int = 5,
        seed: int = 0,
    ) -> list:
        """Drain a CTI feed, applying one update cycle per new strain.

        Returns the list of :class:`UpdateResult` in processing order.
        Duplicate reports for an already-processed strain are skipped.
        """
        results: list = []
        while True:
            report = feed.take()
            if report is None:
                return results
            results.append(
                self.apply_update(report, benign_refresh, epochs=epochs, seed=seed)
            )
            feed.mark_processed(report)
