"""Process monitoring on the streaming session subsystem.

:class:`ProcessMonitor` is the ransomware-layer face of
:class:`~repro.core.sessions.SessionManager`: it speaks the detector's
vocabulary (API-call *names*, :class:`~repro.ransomware.detector.Verdict`
objects, per-process lifecycle) while the manager underneath carries the
incremental LSTM state and does the cross-process batched stepping.

Compared to one :class:`~repro.ransomware.detector.RansomwareDetector`
per process (the pre-sessions design), this:

* replaces the O(window) ``infer_sequence`` recompute burst at every
  stride with one smooth incremental step per call — bit-exact with the
  recompute at every :class:`~repro.core.config.OptimizationLevel`;
* batches all processes observed in a tick through one stacked gate
  matmul instead of one kernel invocation per process;
* bounds memory: idle or excess processes are evicted (checkpointed, so
  a process that wakes up resumes exactly where it left off), and exited
  processes can be :meth:`close`\\ d — the fix for the unbounded
  per-process detector growth.
"""

from __future__ import annotations

from repro.core.sessions import SessionConfig, SessionManager
from repro.ransomware.api_vocabulary import API_TO_ID
from repro.ransomware.detector import Verdict


class ProcessMonitor:
    """Per-process streaming detection over a shared :class:`SessionManager`.

    Parameters
    ----------
    engine:
        A loaded :class:`~repro.core.engine.CSDInferenceEngine`.
    threshold / stride:
        Detector semantics, identical to :class:`RansomwareDetector`.
    memory_budget_bytes / max_resident / idle_after_steps / early_exit:
        Session-layer policy, passed through to :class:`SessionConfig`.
    """

    def __init__(self, engine, threshold: float = 0.5, stride: int = 1,
                 memory_budget_bytes: int | None = None,
                 max_resident: int | None = None,
                 idle_after_steps: int | None = None,
                 early_exit: bool = False):
        self.sessions = SessionManager(
            engine,
            SessionConfig(
                threshold=threshold,
                stride=stride,
                memory_budget_bytes=memory_budget_bytes,
                max_resident_sessions=max_resident,
                idle_after_steps=idle_after_steps,
                early_exit=early_exit,
            ),
        )
        self.engine = engine

    @staticmethod
    def _token(call) -> int:
        return API_TO_ID[call] if isinstance(call, str) else int(call)

    @staticmethod
    def _verdict(session_verdict) -> Verdict:
        return Verdict(
            window_index=session_verdict.window_index,
            probability=session_verdict.probability,
            is_ransomware=session_verdict.is_ransomware,
            inference_microseconds=session_verdict.inference_microseconds,
        )

    def observe(self, process_id, call) -> Verdict | None:
        """Feed one API call (name or token id) from one process."""
        session_verdict = self.sessions.observe(process_id, self._token(call))
        if session_verdict is None:
            return None
        return self._verdict(session_verdict)

    def observe_tick(self, calls) -> dict:
        """Feed one call from *each* of many processes, batched.

        ``calls`` maps process id → API call (name or token id); all the
        streams advance through one stacked gate matmul.  Returns process
        id → :class:`Verdict` for every window completed this tick.
        """
        tokens = {pid: self._token(call) for pid, call in calls.items()}
        return {
            session_verdict.session: self._verdict(session_verdict)
            for session_verdict in self.sessions.step(tokens)
        }

    def close(self, process_id) -> None:
        """Forget a process entirely (it exited); frees its state."""
        self.sessions.close(process_id)

    @property
    def monitored_processes(self) -> tuple:
        """Process ids with live state, resident or checkpointed."""
        return self.sessions.known_keys()

    def stats(self) -> dict:
        """Session-layer operational counters (see ``docs/streaming.md``)."""
        return self.sessions.stats()
