"""Dataset construction (paper Section IV + Appendix A).

Pipeline, exactly as the paper describes it:

1. execute every ransomware variant (78 across the 10 families) and every
   benign workload in the sandbox, on Windows 10 and 11 alternately;
2. take, per execution, sub-sequences of length 100 with a sliding window
   "beginning with the first API call made to promote early detection";
3. merge and shuffle: 13,340 ransomware + 15,660 benign = 29,000
   sequences, 46% ransomware;
4. store as CSV with ``n + 1`` columns — ``n`` items plus a label — and
   ``N`` rows (Section III-A's training input format).

``scale`` shrinks everything proportionally (same generators, same class
balance) so tests and quick benchmarks stay fast; ``scale=1.0`` rebuilds
the paper-sized dataset.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.ransomware.api_vocabulary import encode
from repro.ransomware.benign import ALL_BENIGN_PROFILES
from repro.ransomware.families import ALL_FAMILIES
from repro.ransomware.sandbox import ApiTrace, CuckooSandbox, OS_VERSIONS

#: Paper dataset constants.
PAPER_SEQUENCE_LENGTH = 100
PAPER_RANSOMWARE_SEQUENCES = 13_340
PAPER_BENIGN_SEQUENCES = 15_660
PAPER_TOTAL_SEQUENCES = PAPER_RANSOMWARE_SEQUENCES + PAPER_BENIGN_SEQUENCES

#: Default sliding-window stride (the paper does not pin it; windows must
#: cover "different stages in each variant's execution").
DEFAULT_STRIDE = 12


@dataclasses.dataclass(frozen=True)
class Dataset:
    """Token sequences with binary labels (1 = ransomware)."""

    sequences: np.ndarray   # (N, T) int64
    labels: np.ndarray      # (N,) int64
    sources: tuple          # per-row family/application name

    def __post_init__(self) -> None:
        if self.sequences.ndim != 2:
            raise ValueError(f"sequences must be 2-D, got {self.sequences.shape}")
        if self.labels.shape != (self.sequences.shape[0],):
            raise ValueError(
                f"labels shape {self.labels.shape} does not match "
                f"{self.sequences.shape[0]} sequences"
            )
        if len(self.sources) != self.sequences.shape[0]:
            raise ValueError("sources length must match sequence count")

    def __len__(self) -> int:
        return self.sequences.shape[0]

    @property
    def sequence_length(self) -> int:
        return self.sequences.shape[1]

    @property
    def ransomware_fraction(self) -> float:
        """Class balance; ~0.46 at paper scale."""
        return float(self.labels.mean())

    def subset(self, indices) -> "Dataset":
        indices = np.asarray(indices)
        return Dataset(
            sequences=self.sequences[indices],
            labels=self.labels[indices],
            sources=tuple(self.sources[i] for i in indices),
        )

    def shuffled(self, seed: int = 0) -> "Dataset":
        """The paper's final merge-and-shuffle step."""
        order = np.random.default_rng(seed).permutation(len(self))
        return self.subset(order)

    def train_test_split(self, test_fraction: float = 0.2, seed: int = 0) -> tuple:
        """Window-level stratified split (the paper's methodology)."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
        rng = np.random.default_rng(seed)
        test_indices: list = []
        train_indices: list = []
        for label in (0, 1):
            label_indices = np.flatnonzero(self.labels == label)
            rng.shuffle(label_indices)
            cut = max(1, int(round(len(label_indices) * test_fraction)))
            test_indices.extend(label_indices[:cut])
            train_indices.extend(label_indices[cut:])
        rng.shuffle(train_indices)
        rng.shuffle(test_indices)
        return self.subset(train_indices), self.subset(test_indices)

    def split_by_source(self, test_sources) -> tuple:
        """Leakage-free split: held-out families/applications.

        Stricter than the paper's shuffled-window split; used by the
        generalisation harness.

        Raises
        ------
        ValueError
            If ``test_sources`` is empty, names a source absent from the
            dataset, or would leave either side of the split empty — any
            of which silently degenerates the downstream evaluation.
        """
        test_sources = set(test_sources)
        if not test_sources:
            raise ValueError("test_sources is empty: no held-out split to form")
        present = set(self.sources)
        unknown = test_sources - present
        if unknown:
            raise ValueError(f"unknown sources: {sorted(unknown)}")
        if not present - test_sources:
            raise ValueError(
                "test_sources covers every source: training side would be empty"
            )
        test_mask = np.array([source in test_sources for source in self.sources])
        return self.subset(np.flatnonzero(~test_mask)), self.subset(np.flatnonzero(test_mask))


def extract_windows(
    trace: ApiTrace, length: int, count: int, max_stride: int | None = None
) -> list:
    """Sliding-window sub-sequences from one trace, first window at call 0.

    The stride is chosen so the ``count`` windows span the *whole*
    execution ("sub-sequences at different stages in each variant's
    execution", Appendix A): ``stride = (len(trace) - length) // (count -
    1)``.  At paper scale (171 windows over a ~2,200-call trace) this
    lands at the ~12-call stride the dataset constants imply; at smaller
    window counts the windows spread out instead of bunching at the start.
    ``max_stride`` optionally caps the spacing for callers that want
    densely overlapping windows.

    Returns
    -------
    list
        ``count`` lists of ``length`` token ids.

    Raises
    ------
    ValueError
        If the trace cannot yield ``count`` distinct windows even at
        stride 1.
    """
    if length < 1 or count < 1:
        raise ValueError("length and count must be positive")
    pre_encoded = getattr(trace, "token_ids", None)
    if pre_encoded is not None:
        # Trace-adapter output (repro.ransomware.traces) arrives already
        # quantised; API traces carry call names and encode here.
        token_ids = list(pre_encoded)
    else:
        token_ids = encode(trace.calls)
    available = len(token_ids) - length
    if available < 0 or (count > 1 and available < count - 1):
        raise ValueError(
            f"trace of {len(token_ids)} calls cannot yield {count} windows "
            f"of length {length}"
        )
    if count == 1:
        stride = 0
    else:
        stride = available // (count - 1)
        if max_stride is not None:
            stride = min(stride, max_stride)
    return [token_ids[i * stride : i * stride + length] for i in range(count)]


def _distribute(total: int, buckets: int) -> list:
    """Split ``total`` into ``buckets`` near-equal positive integers."""
    if buckets < 1 or total < buckets:
        raise ValueError(f"cannot distribute {total} over {buckets} buckets")
    base, remainder = divmod(total, buckets)
    return [base + (1 if i < remainder else 0) for i in range(buckets)]


def build_dataset(
    scale: float = 1.0,
    sequence_length: int = PAPER_SEQUENCE_LENGTH,
    stride: int = DEFAULT_STRIDE,
    seed: int = 0,
    shuffle: bool = True,
) -> Dataset:
    """Synthesise the full dataset (or a proportionally scaled version).

    Parameters
    ----------
    scale:
        Fraction of the paper's sequence counts (1.0 → 29,000 sequences).
    sequence_length:
        Window length (100 in the paper).
    stride:
        Maximum sliding-window stride; adapts down for short traces.
    seed:
        Drives both sandbox synthesis and the final shuffle.
    shuffle:
        Apply the paper's final merge-and-shuffle (disable to keep rows
        grouped by source, e.g. for per-family analyses).
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    total_variants = sum(family.variant_count for family in ALL_FAMILIES)
    ransomware_total = max(total_variants, int(round(PAPER_RANSOMWARE_SEQUENCES * scale)))
    benign_total = max(len(ALL_BENIGN_PROFILES), int(round(PAPER_BENIGN_SEQUENCES * scale)))

    sequences: list = []
    labels: list = []
    sources: list = []

    # Ransomware: one sandbox run per variant, alternating guest OS.
    variant_counts = _distribute(ransomware_total, total_variants)
    variant_cursor = 0
    for family in ALL_FAMILIES:
        for variant_index in range(family.variant_count):
            os_version = OS_VERSIONS[variant_cursor % len(OS_VERSIONS)]
            sandbox = CuckooSandbox(os_version=os_version, seed=seed)
            trace = sandbox.execute_ransomware(family, variant_index)
            # Uncapped stride: windows span the whole execution (at paper
            # scale this converges to the ~12-call stride anyway).
            for window in extract_windows(
                trace, sequence_length, variant_counts[variant_cursor]
            ):
                sequences.append(window)
                labels.append(1)
                sources.append(family.name)
            variant_cursor += 1

    # Benign: one session per profile, sized to its window quota.
    benign_counts = _distribute(benign_total, len(ALL_BENIGN_PROFILES))
    for profile_index, profile in enumerate(ALL_BENIGN_PROFILES):
        os_version = OS_VERSIONS[profile_index % len(OS_VERSIONS)]
        sandbox = CuckooSandbox(os_version=os_version, seed=seed)
        count = benign_counts[profile_index]
        # Size the session so the windows land `stride` apart; for small
        # window counts give the session room for several work-phase
        # cycles so the windows sample more than the startup.
        target_length = max(
            sequence_length + stride * (count - 1) + 64,
            sequence_length + 1200,
        )
        trace = sandbox.execute_benign(profile, profile_index, target_length=target_length)
        for window in extract_windows(trace, sequence_length, count):
            sequences.append(window)
            labels.append(0)
            sources.append(profile.name)

    dataset = Dataset(
        sequences=np.asarray(sequences, dtype=np.int64),
        labels=np.asarray(labels, dtype=np.int64),
        sources=tuple(sources),
    )
    if shuffle:
        dataset = dataset.shuffled(seed)
    return dataset


# ----------------------------------------------------------------------
# CSV round-trip (Section III-A's training input format)
# ----------------------------------------------------------------------

def save_csv(dataset: Dataset, path) -> None:
    """Write the ``n+1``-column CSV: n token ids then the label."""
    with open(path, "w") as handle:
        for row, label in zip(dataset.sequences, dataset.labels):
            handle.write(",".join(str(int(token)) for token in row))
            handle.write(f",{int(label)}\n")


def load_csv(path) -> Dataset:
    """Read a CSV written by :func:`save_csv`.

    Source names are not stored in the CSV (the paper's format has only
    items and a label), so they load as ``"csv"``.
    """
    sequences: list = []
    labels: list = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            fields = line.split(",")
            if len(fields) < 2:
                raise ValueError(f"line {line_number}: need n items plus a label")
            try:
                values = [int(field) for field in fields]
            except ValueError:
                raise ValueError(f"line {line_number}: non-integer field") from None
            label = values[-1]
            if label not in (0, 1):
                raise ValueError(f"line {line_number}: label must be 0/1, got {label}")
            sequences.append(values[:-1])
            labels.append(label)
    if not sequences:
        raise ValueError(f"{path}: empty dataset")
    lengths = {len(row) for row in sequences}
    if len(lengths) != 1:
        raise ValueError(f"{path}: inconsistent sequence lengths {sorted(lengths)}")
    return Dataset(
        sequences=np.asarray(sequences, dtype=np.int64),
        labels=np.asarray(labels, dtype=np.int64),
        sources=tuple("csv" for _ in sequences),
    )
