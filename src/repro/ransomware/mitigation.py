"""Real-time in-CSD mitigation (paper Sections I and IV).

The paper's argument for storage-resident detection is that "such a
defense would allow near-instantaneous mitigation" — the classifier sits
next to the data it protects, so the moment a verdict fires, subsequent
writes from the offending process can be refused *at the drive*, before
further files are encrypted.

:class:`ProtectedStorage` wraps the SSD model with per-process write
admission; :class:`MitigationEngine` converts detector verdicts into
quarantine state and accounts what was stopped.
"""

from __future__ import annotations

import dataclasses

from repro.hw.ssd import NvmeSsd
from repro.ransomware.detector import Verdict


class WriteBlocked(PermissionError):
    """A quarantined process attempted a write the CSD refused."""


@dataclasses.dataclass(frozen=True)
class QuarantineEvent:
    """Record of a process being quarantined."""

    process_id: int
    window_index: int
    probability: float


class ProtectedStorage:
    """Per-process write admission in front of an NVMe SSD model.

    Parameters
    ----------
    ssd:
        The underlying drive.
    """

    def __init__(self, ssd: NvmeSsd):
        self.ssd = ssd
        self._quarantined: set = set()
        self.blocked_writes = 0
        self.blocked_bytes = 0
        self.allowed_writes = 0

    @property
    def quarantined_processes(self) -> frozenset:
        return frozenset(self._quarantined)

    def quarantine(self, process_id: int) -> None:
        """Refuse all further writes from ``process_id``."""
        self._quarantined.add(process_id)

    def release(self, process_id: int) -> None:
        """Lift a quarantine (operator action after triage)."""
        self._quarantined.discard(process_id)

    def write(self, process_id: int, key: str, num_bytes: int) -> float:
        """Admit or refuse one write; returns the simulated write seconds.

        Raises
        ------
        WriteBlocked
            If the process is quarantined.  The write never reaches the
            drive — this is the "immediately thwart any subsequent
            encryption" behaviour.
        """
        if process_id in self._quarantined:
            self.blocked_writes += 1
            self.blocked_bytes += num_bytes
            raise WriteBlocked(
                f"process {process_id} is quarantined; write of {num_bytes} "
                f"bytes to {key!r} refused"
            )
        self.allowed_writes += 1
        return self.ssd.write_object(key, num_bytes)


class MitigationEngine:
    """Turns detector verdicts into storage quarantine.

    Parameters
    ----------
    storage:
        The protected storage front end.
    quarantine_threshold:
        Verdict probability required to count toward quarantine; defaults
        to acting on any positive verdict (the detector already
        thresholds).
    confirmations:
        Number of *consecutive* qualifying verdicts required before the
        process is quarantined.  1 (the default) quarantines on the first
        alarm; higher values trade a few windows of reaction time for
        robustness against isolated borderline windows — ransomware's
        encryption phase produces long runs of positives, benign blips do
        not.
    """

    def __init__(
        self,
        storage: ProtectedStorage,
        quarantine_threshold: float = 0.0,
        confirmations: int = 1,
    ):
        if not 0.0 <= quarantine_threshold < 1.0:
            raise ValueError(
                f"quarantine_threshold must be in [0, 1), got {quarantine_threshold}"
            )
        if confirmations < 1:
            raise ValueError(f"confirmations must be >= 1, got {confirmations}")
        self.storage = storage
        self.quarantine_threshold = quarantine_threshold
        self.confirmations = confirmations
        self.events: list = []
        self._streaks: dict = {}

    def handle_verdict(self, process_id: int, verdict: Verdict) -> bool:
        """Apply one verdict; returns True if the process is quarantined.

        Negative (or below-threshold) verdicts reset the process's
        confirmation streak.
        """
        if not verdict.is_ransomware or verdict.probability < self.quarantine_threshold:
            self._streaks[process_id] = 0
            return process_id in self.storage.quarantined_processes
        streak = self._streaks.get(process_id, 0) + 1
        self._streaks[process_id] = streak
        if streak < self.confirmations:
            return False
        already = process_id in self.storage.quarantined_processes
        self.storage.quarantine(process_id)
        if not already:
            self.events.append(
                QuarantineEvent(
                    process_id=process_id,
                    window_index=verdict.window_index,
                    probability=verdict.probability,
                )
            )
        return True

    def summary(self) -> dict:
        """Mitigation statistics for reporting."""
        return {
            "quarantined_processes": len(self.storage.quarantined_processes),
            "quarantine_events": len(self.events),
            "blocked_writes": self.storage.blocked_writes,
            "blocked_bytes": self.storage.blocked_bytes,
            "allowed_writes": self.storage.allowed_writes,
        }
