"""Deprecated location — the mitigation surface moved to :mod:`repro.response`.

The in-CSD mitigation engine grew into the verdict-driven response and
recovery subsystem (graduated escalation ladder, copy-on-write snapshots,
hash-chained audit logs — see ``docs/response.md``).  The historical
classes live on, reimplemented on the new engine, in
:mod:`repro.response.legacy`; this module re-exports them so existing
imports keep working.

``MitigationEngine`` and ``ProtectedStorage`` are re-exported silently
(their behaviour is unchanged).  ``WriteBlocked`` and ``QuarantineEvent``
warn on access — new code should catch
:class:`repro.response.WriteRefused` and read the audit log instead.
"""

from __future__ import annotations

import warnings

from repro.response.legacy import MitigationEngine, ProtectedStorage

__all__ = [
    "MitigationEngine",
    "ProtectedStorage",
    "QuarantineEvent",
    "WriteBlocked",
]

_RETIRED = {
    "WriteBlocked": (
        "repro.ransomware.mitigation.WriteBlocked is deprecated; catch "
        "repro.response.WriteRefused (raised by both the legacy "
        "ProtectedStorage and the SmartSSD protected write path)"
    ),
    "QuarantineEvent": (
        "repro.ransomware.mitigation.QuarantineEvent is deprecated; use "
        "repro.response.legacy.QuarantineEvent, or read the response "
        "audit log (repro.response.AuditLog) for the full transition "
        "history"
    ),
}


def __getattr__(name: str):
    if name in _RETIRED:
        warnings.warn(_RETIRED[name], DeprecationWarning, stacklevel=2)
        from repro.response import legacy

        return getattr(legacy, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
