"""The end-to-end ransomware detector (paper Section IV use case).

:class:`RansomwareDetector` joins the trained classifier, deployed on the
CSD inference engine, with the streaming contract the paper implies: API
calls are observed "in the order in which they would be observed on a
system housing a CSD", buffered until a fully-formed sequence of 100 items
exists, and then classified; each subsequent call slides the window.

Detection latency matters (the whole point of in-storage inference is
"near-instantaneous mitigation"), so verdicts carry both the window index
and the simulated inference time.
"""

from __future__ import annotations

import collections
import dataclasses

import numpy as np

from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.engine import CSDInferenceEngine
from repro.core.weights import HostWeights
from repro.nn.model import SequenceClassifier
from repro.nn.trainer import Trainer, TrainingConfig
from repro.ransomware.api_vocabulary import API_TO_ID
from repro.ransomware.dataset import Dataset


@dataclasses.dataclass(frozen=True)
class Verdict:
    """One window's classification."""

    window_index: int        # 0 = the first fully-formed window
    probability: float
    is_ransomware: bool
    inference_microseconds: float


@dataclasses.dataclass(frozen=True)
class DetectionReport:
    """Outcome of scanning a whole trace."""

    verdicts: tuple
    first_detection: Verdict | None
    window_length: int

    @property
    def detected(self) -> bool:
        return self.first_detection is not None

    @property
    def calls_until_detection(self) -> int | None:
        """API calls observed when the alarm fired (early-detection metric).

        Window ``w`` spans calls ``[w, w + window_length)``; its verdict
        fires once its last call has been observed, i.e. after
        ``w + window_length`` calls.
        """
        if self.first_detection is None:
            return None
        return self.first_detection.window_index + self.window_length


class RansomwareDetector:
    """Streaming window classifier on top of the CSD engine.

    Parameters
    ----------
    engine:
        A loaded :class:`~repro.core.engine.CSDInferenceEngine`.
    threshold:
        Ransomware probability above which a window raises a verdict.
    stride:
        Classify every ``stride``-th window once the buffer is full
        (1 = every call; larger strides trade detection latency for
        inference throughput).
    """

    def __init__(self, engine: CSDInferenceEngine, threshold: float = 0.5, stride: int = 1):
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.engine = engine
        self.threshold = threshold
        self.stride = stride
        self._window_length = engine.config.dimensions.sequence_length
        self._sequence_microseconds = engine.sequence_microseconds()
        self._buffer: collections.deque = collections.deque(maxlen=self._window_length)
        self._calls_seen = 0
        self._windows_classified = 0

    def reset(self) -> None:
        """Forget all buffered calls (e.g. when the watched process exits)."""
        self._buffer.clear()
        self._calls_seen = 0
        self._windows_classified = 0

    def observe(self, api_call) -> Verdict | None:
        """Feed one API call; returns a verdict when a window was classified.

        ``api_call`` may be an API name (string) or a token id.
        """
        token = API_TO_ID[api_call] if isinstance(api_call, str) else int(api_call)
        self._buffer.append(token)
        self._calls_seen += 1
        if len(self._buffer) < self._window_length:
            return None
        window_index = self._calls_seen - self._window_length
        if window_index % self.stride != 0:
            return None
        result = self.engine.infer_sequence(list(self._buffer))
        self._windows_classified += 1
        verdict = Verdict(
            window_index=window_index,
            probability=result.probability,
            is_ransomware=result.probability >= self.threshold,
            inference_microseconds=self._sequence_microseconds,
        )
        telemetry = self.engine.telemetry
        if telemetry is not None:
            telemetry.counter(
                "repro_detector_verdicts_total",
                verdict="ransomware" if verdict.is_ransomware else "benign",
            ).inc()
        return verdict

    def scan_trace(self, api_calls, stop_at_first: bool = True) -> DetectionReport:
        """Scan a full trace; optionally stop at the first alarm."""
        self.reset()
        verdicts: list = []
        first: Verdict | None = None
        for call in api_calls:
            verdict = self.observe(call)
            if verdict is None:
                continue
            verdicts.append(verdict)
            if verdict.is_ransomware and first is None:
                first = verdict
                if stop_at_first:
                    break
        return DetectionReport(
            verdicts=tuple(verdicts),
            first_detection=first,
            window_length=self._window_length,
        )

    def evaluate(self, dataset: Dataset, workers: int = 1) -> dict:
        """Batch-classify a dataset split through the CSD engine.

        Runs the engine's vectorised batch path (one forward pass over the
        whole split, chunked for memory) rather than a per-sequence Python
        loop; the probabilities are bit-exact either way.  ``workers > 1``
        shards the chunks across the engine's
        :class:`~repro.core.parallel.WorkerPool` — same values, more cores.

        Returns the paper's four metrics (accuracy/precision/recall/F1).
        Sequences must match the engine's configured window length.
        """
        from repro.nn.metrics import classification_report

        probabilities = self.engine.predict_proba(dataset.sequences, workers=workers)
        predictions = (probabilities >= self.threshold).astype(int)
        telemetry = self.engine.telemetry
        if telemetry is not None:
            telemetry.counter("repro_detector_evaluations_total").inc()
            telemetry.counter("repro_detector_windows_total").inc(len(dataset))
        return classification_report(predictions, dataset.labels)


def train_detector(
    dataset: Dataset,
    training: TrainingConfig | None = None,
    optimization: OptimizationLevel = OptimizationLevel.FIXED_POINT,
    threshold: float = 0.5,
    seed: int = 0,
    test_fraction: float = 0.2,
) -> tuple:
    """Offline-train a model on ``dataset`` and deploy it to a CSD engine.

    The full paper pipeline in one call: split, train, extract weights,
    host-initialise the engine, wrap in a detector.

    Returns
    -------
    tuple
        ``(detector, history, test_split)`` — the deployed detector, the
        training convergence history (Fig. 4), and the held-out split.
    """
    train_split, test_split = dataset.train_test_split(test_fraction, seed=seed)
    model = SequenceClassifier(seed=seed)
    trainer = Trainer(model, training or TrainingConfig())
    history = trainer.fit(
        train_split.sequences, train_split.labels,
        test_split.sequences, test_split.labels,
    )
    weights = HostWeights.from_model(model)
    config = EngineConfig(
        dimensions=dataclasses.replace(
            weights.dimensions, sequence_length=dataset.sequence_length
        ),
        optimization=optimization,
    )
    engine = CSDInferenceEngine(config, weights)
    return RansomwareDetector(engine, threshold=threshold), history, test_split
