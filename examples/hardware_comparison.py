#!/usr/bin/env python
"""Hardware evaluation: regenerate Fig. 3, Table I, and the energy claim.

* Fig. 3 — per-kernel inference time at each optimisation rung
  (Vanilla -> +II -> +Fixed-point);
* Table I — FPGA vs Xeon-class CPU vs A100-class GPU per-item time with
  95% CIs, and the headline speedup (paper: 344.6x over the GPU);
* the power argument — energy per inference on each device.

Run:  python examples/hardware_comparison.py
"""

from repro import (
    CpuInferenceBaseline,
    GpuInferenceBaseline,
    OptimizationLevel,
    SequenceClassifier,
    engine_at_level,
    format_table,
    hardware_comparison,
    optimization_sweep,
)
from repro.core.sessions import streaming_report
from repro.core.weights import HostWeights
from repro.hw.power import (
    A100_GPU_POWER,
    SMARTSSD_FPGA_POWER,
    XEON_CPU_POWER,
    energy_comparison,
)

PAPER_FIG3 = {
    "VANILLA": {"preprocess": 0.800, "gates": 1.27700, "hidden_state": 5.076},
    "II_OPTIMIZED": {"preprocess": 0.743, "gates": 1.65100, "hidden_state": 2.001},
    "FIXED_POINT": {"preprocess": 0.740, "gates": 0.00333, "hidden_state": 1.408},
}


def main() -> None:
    print("=== Fig. 3: kernel times by optimisation level (us/item) ===")
    sweep = optimization_sweep()
    header = f"{'level':14s}{'kernel':14s}{'simulated':>11s}{'paper':>9s}"
    print(header)
    for level, kernels in sweep.items():
        for kernel, value in kernels.items():
            if kernel == "total":
                continue
            paper = PAPER_FIG3[level][kernel]
            print(f"{level:14s}{kernel:14s}{value:11.5f}{paper:9.5f}")
        print(f"{level:14s}{'TOTAL':14s}{kernels['total']:11.5f}")

    print("\n=== Table I: hardware comparison ===")
    model = SequenceClassifier(seed=0)
    weights = HostWeights.from_model(model)
    engine = engine_at_level(model, OptimizationLevel.FIXED_POINT, sequence_length=100)
    comparison = hardware_comparison(
        engine, CpuInferenceBaseline(weights), GpuInferenceBaseline(weights),
        trials=5000,
    )
    print(format_table(comparison))
    print("(paper: FPGA 2.15133 us, CPU 991.578 us, GPU 741.353 us; 344.6x)")

    print("\n=== Energy per inference (one 100-item window) ===")
    window_seconds = {
        SMARTSSD_FPGA_POWER: comparison.fpga.mean_us * 100 * 1e-6,
        XEON_CPU_POWER: comparison.cpu.mean_us * 100 * 1e-6,
        A100_GPU_POWER: comparison.gpu.mean_us * 100 * 1e-6,
    }
    for device, joules in energy_comparison(window_seconds).items():
        print(f"  {device:18s} {joules * 1000:10.4f} mJ")

    print("\n=== Streaming extension (Section III-C) ===")
    report = streaming_report(engine)
    print(f"  per-item: {report.baseline_item_cycles} -> "
          f"{report.streamed_item_cycles} cycles "
          f"({report.item_speedup:.2f}x additional)")


if __name__ == "__main__":
    main()
