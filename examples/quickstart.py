#!/usr/bin/env python
"""Quickstart: train the ransomware classifier and deploy it to the CSD.

The whole paper pipeline in ~30 lines:

1. synthesise a (scaled-down) version of the 29K-sequence API-call dataset;
2. train the 7,472-parameter embedding+LSTM model offline;
3. deploy it onto the simulated SmartSSD-class inference engine
   (fixed-point, all optimisations);
4. evaluate detection quality and report the per-item inference time;
5. attach telemetry and trace one batch inference kernel by kernel.

The same telemetry is available from the CLI via the global flag, e.g.
``python -m repro --telemetry out.jsonl evaluate weights.txt data.csv``
(schema: docs/observability.md).

Run:  python examples/quickstart.py
"""

from repro import Telemetry, build_dataset, train_detector
from repro.nn import TrainingConfig


def main() -> None:
    print("Synthesising dataset (10% of paper scale)...")
    dataset = build_dataset(scale=0.10, seed=1)
    print(f"  {len(dataset)} sequences, "
          f"{dataset.ransomware_fraction:.0%} ransomware, "
          f"window length {dataset.sequence_length}")

    print("Training offline (this is the paper's Fig. 4 procedure)...")
    detector, history, test_split = train_detector(
        dataset,
        training=TrainingConfig(epochs=20, eval_every=4, learning_rate=0.005),
        seed=0,
    )
    peak = history.peak
    print(f"  peak test accuracy {peak.test_accuracy:.4f} at epoch {peak.epoch}")

    print("Evaluating on the CSD engine (fixed-point arithmetic)...")
    metrics = detector.evaluate(test_split)
    for name, value in metrics.items():
        print(f"  {name:10s} {value:.4f}")

    per_item_us = detector.engine.per_item_microseconds()
    print(f"CSD inference: {per_item_us:.3f} us per sequence item "
          f"(paper: 2.15133 us)")
    print(f"One full {dataset.sequence_length}-item window: "
          f"{per_item_us * dataset.sequence_length / 1000:.3f} ms-equivalent "
          f"of FPGA time")

    print("Tracing one 64-window batch (simulated kernel-clock cycles)...")
    telemetry = Telemetry()
    detector.engine.attach_telemetry(telemetry)
    detector.engine.infer_batch(test_split.sequences[:64])
    print(telemetry.tracer.render_tree(cycles=True))
    gates = telemetry.metrics.histogram(
        "repro_kernel_latency_cycles", kernel="kernel_gates"
    )
    print(f"  kernel_gates: {gates.count} observations, "
          f"{gates.sum / gates.count:.0f} cycle(s) per item "
          f"(the paper's 1-cycle headline)")


if __name__ == "__main__":
    main()
