#!/usr/bin/env python
"""Beyond ransomware: deploy the CSD classifier on a different task.

The paper argues the methodology "can generalize to any number of data
center tasks" (Section I).  This example builds a *different* sequential
classification problem — detecting failing disks from SMART-like event
streams — trains the same architecture on it, and deploys it to the same
CSD engine, demonstrating that nothing in the engine is ransomware-
specific: the FPGA structure is fixed; only the weight file changes.

Run:  python examples/custom_sequence_task.py
"""

import numpy as np

from repro import CSDInferenceEngine, OptimizationLevel, SequenceClassifier
from repro.core.config import EngineConfig, ModelDimensions
from repro.core.weights import HostWeights
from repro.nn import Trainer, TrainingConfig

#: A small event vocabulary for a disk-health monitor.
EVENTS = (
    "read_ok", "write_ok", "read_slow", "write_slow",
    "sector_relocated", "crc_error", "spin_retry", "timeout",
    "temp_high", "temp_normal", "queue_full", "idle",
)
SEQUENCE_LENGTH = 60


def synthesize_disk_streams(count: int, seed: int) -> tuple:
    """Healthy disks emit mostly ok/idle; failing disks develop bursts of
    relocations, CRC errors, and retries that *escalate over time* — a
    temporal pattern, which is why an LSTM (not a bag-of-events model)
    fits."""
    rng = np.random.default_rng(seed)
    healthy_weights = np.array([30, 30, 2, 2, 0.2, 0.2, 0.2, 0.2, 1, 5, 1, 20])
    sequences = np.empty((count, SEQUENCE_LENGTH), dtype=np.int64)
    labels = rng.integers(0, 2, size=count)
    for row, failing in enumerate(labels):
        weights = healthy_weights.copy()
        for t in range(SEQUENCE_LENGTH):
            if failing:
                # Degradation: error likelihood grows along the sequence.
                escalation = 1.0 + 6.0 * (t / SEQUENCE_LENGTH) ** 2
                weights[4:8] = healthy_weights[4:8] * escalation * 25
            p = weights / weights.sum()
            sequences[row, t] = rng.choice(len(EVENTS), p=p)
    return sequences, labels


def main() -> None:
    print("Synthesising disk-health event streams...")
    train_x, train_y = synthesize_disk_streams(1500, seed=0)
    test_x, test_y = synthesize_disk_streams(400, seed=1)

    print("Training the same architecture on the new task...")
    model = SequenceClassifier(
        vocab_size=len(EVENTS), embedding_dim=8, hidden_size=32, seed=0
    )
    trainer = Trainer(model, TrainingConfig(epochs=8, eval_every=8, learning_rate=0.005))
    history = trainer.fit(train_x, train_y, test_x, test_y)
    print(f"  test accuracy: {history.records[-1].test_accuracy:.4f}")

    print("Deploying to the CSD engine (unchanged engine, new weights)...")
    weights = HostWeights.from_model(model)
    config = EngineConfig(
        dimensions=ModelDimensions(
            vocab_size=len(EVENTS), embedding_dim=8, hidden_size=32,
            sequence_length=SEQUENCE_LENGTH,
        ),
        optimization=OptimizationLevel.FIXED_POINT,
    )
    engine = CSDInferenceEngine(config, weights)

    sample = test_x[:50]
    agreement = float(np.mean(engine.predict(sample) == model.predict(sample)))
    print(f"  CSD vs offline model decision agreement: {agreement:.1%}")
    print(f"  CSD per-item inference: {engine.per_item_microseconds():.3f} us")
    result = engine.infer_sequence(test_x[0])
    verdict = "FAILING" if result.probability >= 0.5 else "healthy"
    truth = "FAILING" if test_y[0] else "healthy"
    print(f"  disk 0: predicted {verdict} (p={result.probability:.3f}), "
          f"actually {truth}")


if __name__ == "__main__":
    main()
