#!/usr/bin/env python
"""In-CSD detection + mitigation: stop a Lockbit run mid-encryption.

The paper's motivating scenario (Sections I, IV): the classifier lives on
the drive next to the data it protects, so a positive verdict can refuse
the malware's subsequent writes *at the storage*, before the bulk of the
files are encrypted.

This example:

1. trains and deploys the detector (small scale for speed);
2. "executes" a Lockbit variant in the sandbox to get its API-call trace;
3. replays the trace call-by-call: every NtWriteFile becomes a write to
   the protected SmartSSD, every call feeds the streaming detector;
4. shows the timeline — when the alarm fired, how many encrypted-file
   writes were admitted before quarantine, and how many were refused.

Run:  python examples/ransomware_mitigation.py
"""

from repro import build_dataset
from repro.hw.smartssd import SmartSSD
from repro.nn import TrainingConfig
from repro.ransomware import (
    CuckooSandbox,
    MitigationEngine,
    ProtectedStorage,
    WriteBlocked,
    train_detector,
)
from repro.ransomware.families import LOCKBIT

MALWARE_PROCESS_ID = 4242


def main() -> None:
    print("Training the detector (scaled-down dataset)...")
    dataset = build_dataset(scale=0.05, seed=3)
    detector, _, _ = train_detector(
        dataset,
        training=TrainingConfig(epochs=12, eval_every=12, learning_rate=0.005),
        seed=0,
    )
    detector.stride = 10  # classify every 10th window: still sub-ms reaction

    print("Detonating Lockbit variant 3 in the sandbox...")
    trace = CuckooSandbox(seed=99).execute_ransomware(LOCKBIT, 3)
    print(f"  trace: {len(trace)} API calls")

    device = SmartSSD()
    storage = ProtectedStorage(device.ssd)
    mitigation = MitigationEngine(storage)

    detector.reset()
    alarm_index = None
    admitted, refused = 0, 0
    for index, call in enumerate(trace.calls):
        if call == "NtWriteFile":
            try:
                storage.write(MALWARE_PROCESS_ID, f"victim-file-{index}", 64 * 1024)
                admitted += 1
            except WriteBlocked:
                refused += 1
        verdict = detector.observe(call)
        if verdict is not None and mitigation.handle_verdict(MALWARE_PROCESS_ID, verdict):
            if alarm_index is None:
                alarm_index = index
                print(f"  ALARM at call {index} "
                      f"(p={verdict.probability:.3f}, "
                      f"inference {verdict.inference_microseconds:.0f} us)")

    total_writes = admitted + refused
    print("\nOutcome:")
    print(f"  encrypted-file writes attempted : {total_writes}")
    print(f"  admitted before quarantine      : {admitted} "
          f"({admitted / total_writes:.1%})")
    print(f"  refused by the CSD              : {refused} "
          f"({refused / total_writes:.1%})")
    summary = mitigation.summary()
    print(f"  bytes of encryption prevented   : {summary['blocked_bytes']:,}")

    # A benign process is untouched throughout.
    storage.write(process_id=1, key="user-document", num_bytes=4096)
    print("  benign process writes           : still admitted")


if __name__ == "__main__":
    main()
