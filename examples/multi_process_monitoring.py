#!/usr/bin/env python
"""Fleet-realistic monitoring: one infected process among many.

A system housing a CSD does not see one clean trace — it sees API calls
from dozens of processes interleaved.  This example replays an
interleaved schedule of three benign applications and one Wannacry
variant through the per-process detector bank, with consecutive-
confirmation mitigation, and prints the incident timeline plus the
drive's remaining monitoring headroom.

Run:  python examples/multi_process_monitoring.py
"""

from repro import build_dataset
from repro.core.throughput import throughput_report
from repro.hw.smartssd import SmartSSD
from repro.nn import TrainingConfig
from repro.ransomware import CuckooSandbox, ProtectedStorage, train_detector
from repro.ransomware.benign import ALL_BENIGN_PROFILES
from repro.ransomware.families import WANNACRY
from repro.ransomware.replay import HostReplay


def main() -> None:
    print("Training the detector...")
    dataset = build_dataset(scale=0.08, seed=5)
    detector, _, _ = train_detector(
        dataset,
        training=TrainingConfig(epochs=25, eval_every=5, learning_rate=0.005,
                                restore_best_weights=True),
        seed=0,
    )
    engine = detector.engine

    print("Spinning up the host: 3 benign apps + 1 Wannacry variant...")
    sandbox = CuckooSandbox(seed=17)
    traces = [
        sandbox.execute_benign(ALL_BENIGN_PROFILES[0], 0, target_length=1500),   # editor
        sandbox.execute_ransomware(WANNACRY, 2),
        sandbox.execute_benign(ALL_BENIGN_PROFILES[14], 0, target_length=1500),  # backup tool
        sandbox.execute_benign(ALL_BENIGN_PROFILES[16], 0, target_length=1500),  # KeePass
    ]
    # High-confidence, 3-consecutive-confirmations policy: a process must
    # sustain p >= 0.9 across three classified windows before the drive
    # refuses its writes.
    replay = HostReplay(
        engine, ProtectedStorage(SmartSSD().ssd),
        threshold=0.9, stride=20, confirmations=3,
    )
    outcomes = replay.run(traces, seed=1)

    print("\nPer-process outcome:")
    for outcome in outcomes.values():
        kind = "RANSOMWARE" if outcome.is_ransomware else "benign"
        if outcome.quarantined_at_step is not None:
            state = (f"QUARANTINED at step {outcome.quarantined_at_step} "
                     f"({outcome.writes_blocked} writes refused)")
        else:
            state = f"clean ({outcome.writes_admitted} writes admitted)"
        print(f"  pid {outcome.process_id} {outcome.source:22s} [{kind:10s}] {state}")

    summary = replay.incident_summary(outcomes)
    print(f"\nIncident summary: {summary['caught']}/{summary['ransomware_processes']} "
          f"infections stopped, {summary['falsely_quarantined']} false quarantines, "
          f"{summary['writes_blocked']} malicious writes blocked at the drive")
    if summary["falsely_quarantined"]:
        print("note: an *encrypting backup tool* tripping the detector is the "
              "known hard case — its bulk read-encrypt-replace loop is "
              "behaviourally identical to ransomware. Operators allowlist "
              "such tools (ProtectedStorage.release).")

    report = throughput_report(engine, api_calls_per_second=2000, detection_stride=20)
    print(f"\nMonitoring headroom: this CSD sustains "
          f"{report.windows_per_second:.0f} windows/s "
          f"({report.bottleneck}-bound) — roughly "
          f"{report.concurrent_streams:.0f} hosts of this activity level")


if __name__ == "__main__":
    main()
