#!/usr/bin/env python
"""CTI-driven model update: a novel strain appears, the drive adapts.

Paper Section III-A: the FPGA binary's structure is independent of the
trained parameters, so when Cyber Threat Intelligence surfaces a new
ransomware strain, the operator retrains offline and hot-swaps the weight
file into the running CSD — no recompilation, no downtime beyond a
parameter download.

This example deploys a detector trained on the ten Table II families,
confronts it with a "Hive-like" double-extortion strain it has never
seen, then applies one CTI update cycle and measures the improvement.

Run:  python examples/cti_model_update.py
"""

import numpy as np

from repro import build_dataset
from repro.nn import TrainingConfig
from repro.ransomware import (
    ModelUpdateWorkflow,
    NOVEL_STRAIN,
    ThreatReport,
    train_detector,
)


def main() -> None:
    print("Training the detector on the ten known families...")
    dataset = build_dataset(scale=0.05, seed=2)
    detector, history, _ = train_detector(
        dataset,
        training=TrainingConfig(epochs=12, eval_every=12, learning_rate=0.005),
        seed=0,
    )
    print(f"  test accuracy on known families: "
          f"{history.records[-1].test_accuracy:.4f}")

    # The model object is what the offline side keeps for fine-tuning;
    # reconstruct it from the deployed weights for this self-contained demo.
    from repro.nn import SequenceClassifier

    model = SequenceClassifier(seed=0)
    model.set_weights(
        [detector.engine.weights.embedding]
        + _keras_arrays(detector.engine.weights)
    )

    workflow = ModelUpdateWorkflow(detector.engine, model)
    report = ThreatReport(strain=NOVEL_STRAIN, first_seen="2026-07-01",
                          source_feed="example-cti-feed")

    print(f"\nCTI feed reports new strain: {NOVEL_STRAIN.name} "
          f"({NOVEL_STRAIN.description})")
    refresh = dataset.subset(np.arange(min(1000, len(dataset))))
    result = workflow.apply_update(report, refresh, epochs=4, seed=7)

    print(f"  sandboxed {NOVEL_STRAIN.variant_count} variants -> "
          f"{result.sequences_added} new training windows")
    print(f"  detection rate before update : {result.detection_rate_before:.1%}")
    print(f"  detection rate after update  : {result.detection_rate_after:.1%}")
    print("  (weights hot-swapped into the running engine; same FPGA binary)")


def _keras_arrays(host_weights):
    """Rebuild the Keras-layout LSTM/head arrays from host-layout gates."""
    import numpy as np

    gates = host_weights.gates
    hidden = gates["i"].matrix.shape[0]
    order = ("i", "f", "c", "o")
    w_h = np.concatenate([gates[g].matrix[:, :hidden].T for g in order], axis=1)
    w_x = np.concatenate([gates[g].matrix[:, hidden:].T for g in order], axis=1)
    bias = np.concatenate([gates[g].bias for g in order])
    return [w_x, w_h, bias, host_weights.fc_weights.reshape(-1, 1),
            np.array([host_weights.fc_bias])]


if __name__ == "__main__":
    main()
